/**
 * @file
 * Trace workflow demo: record a PCM-level trace from a built-in
 * application profile, inspect it, then replay it through the full
 * memory system — the path a user with real gem5/PIN traces follows.
 *
 * Usage:
 *   trace_record_replay [app=astar] [ops=100000] [format=binary|text]
 *                       [file=/tmp/pcmap_demo.trace] [mode=RWoW-RDE]
 */

#include <cstdio>

#include "core/memory_system.h"
#include "cpu/core_model.h"
#include "sim/config.h"
#include "workload/analysis.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

pcmap::SystemMode
modeByName(const std::string &name)
{
    for (const pcmap::SystemMode m : pcmap::kAllModes) {
        if (name == pcmap::systemModeName(m))
            return m;
    }
    pcmap::fatal("unknown system mode '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pcmap;
    using namespace pcmap::workload;

    const Config args = Config::fromArgs(argc, argv);
    const std::string app = args.getString("app", "astar");
    const std::uint64_t ops = args.getUint("ops", 100'000);
    const std::string path =
        args.getString("file", "/tmp/pcmap_demo.trace");
    const auto format = args.getString("format", "binary") == "text"
                            ? TraceWriter::Format::Text
                            : TraceWriter::Format::Binary;
    const SystemMode mode =
        modeByName(args.getString("mode", "RWoW-RDE"));

    // --- Record ------------------------------------------------------
    {
        BackingStore shadow;
        SyntheticGenerator gen(findProfile(app), shadow,
                               args.getUint("seed", 1));
        TraceWriter writer(path, format);
        MemOp op;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            gen.next(op);
            writer.append(op);
            if (op.isWrite) {
                const std::uint64_t line = op.addr / kLineBytes;
                shadow.writeWords(line, op.data,
                                  shadow.essentialWords(line, op.data));
                ++writes;
            } else {
                ++reads;
            }
        }
        std::printf("recorded %llu ops (%llu reads, %llu writes) "
                    "from profile '%s' to %s\n",
                    static_cast<unsigned long long>(ops),
                    static_cast<unsigned long long>(reads),
                    static_cast<unsigned long long>(writes),
                    app.c_str(), path.c_str());
    }

    // --- Fit a profile from the trace (the reverse workflow) ---------
    {
        BackingStore shadow;
        TraceReplaySource replay(path, shadow);
        const StreamAnalysis analysis =
            analyzeStream(replay, shadow, ops);
        const AppProfile fitted = fitProfile(analysis, "from-trace");
        std::printf("fitted profile: rpki %.2f wpki %.2f, mean dirty "
                    "words %.2f, seq locality %.2f, footprint %llu "
                    "lines\n",
                    fitted.rpki, fitted.wpki, fitted.meanDirtyWords(),
                    fitted.rowHitRate,
                    static_cast<unsigned long long>(
                        fitted.footprintLines));
    }

    // --- Replay ------------------------------------------------------
    {
        EventQueue eq;
        MemGeometry geom;
        MainMemory memory(ControllerConfig::forMode(mode), geom, eq);
        TraceReplaySource replay(path, memory.backingStore());

        CoreConfig core_cfg;
        // Generous instruction budget: the run ends when the trace is
        // exhausted and the remaining budget is pure compute.
        CoreModel core(0, core_cfg, eq, memory, replay,
                       /*target_insts=*/ops * 400);
        memory.setRetryCallback([&core] { core.onRetry(); });
        memory.setVerifyCallback(
            [&core](ReqId id, unsigned, bool fault) {
                core.onVerify(id, fault);
            });

        core.start();
        // Run until the trace is fully consumed and memory drains.
        eq.runUntil([&] {
            return core.stats().readsIssued +
                           core.stats().writesIssued >=
                       ops &&
                   memory.idle();
        });
        memory.finalize(eq.now());
        (void)core.finished();

        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        double lat = 0.0;
        for (unsigned ch = 0; ch < memory.channels(); ++ch) {
            const ControllerStats &s = memory.controller(ch).stats();
            reads += s.readsCompleted;
            writes += s.writesCompleted;
            lat += s.readLatencySum;
        }
        std::printf("replayed on %s: %llu reads (%.1f ns effective "
                    "latency), %llu write-backs, %.2f ms simulated\n",
                    systemModeName(mode),
                    static_cast<unsigned long long>(reads),
                    reads ? ticksToNs(static_cast<Tick>(
                                lat / static_cast<double>(reads)))
                          : 0.0,
                    static_cast<unsigned long long>(writes),
                    static_cast<double>(eq.now()) /
                        static_cast<double>(kMillisecond));
    }
    return 0;
}
