#include "core/stat_export.h"

#include <optional>
#include <ostream>

namespace pcmap {

/** One controller's stat objects plus the refresh logic. */
struct SystemStatExport::ControllerStatsMirror
{
    explicit ControllerStatsMirror(const std::string &name,
                                   bool multi_round)
        : group(name),
          readsCompleted(group, "reads", "PCM reads served"),
          readsForwarded(group, "readsForwarded",
                         "reads answered from the write queue"),
          readsDelayed(group, "readsDelayedByWrite",
                       "reads held up by write service"),
          writesCompleted(group, "writes", "write-backs committed"),
          writesSilent(group, "writesSilent",
                       "fully redundant write-backs"),
          writesCoalesced(group, "writesCoalesced",
                          "write-backs merged in the queue"),
          readLatency(group, "readLatencyNs",
                      "mean effective read latency"),
          essentialWords(group, "essentialWords",
                         "mean dirty words per write-back"),
          rowReads(group, "rowReads",
                   "reads served by PCC reconstruction"),
          eccDeferred(group, "eccDeferredReads",
                      "reads with deferred SECDED check"),
          verifies(group, "verifies", "deferred checks completed"),
          faults(group, "faults", "deferred checks that failed"),
          twoStep(group, "twoStepWrites",
                  "one-word writes split for RoW"),
          multiStep(group, "multiStepWrites",
                    "serialized multi-word RoW writes"),
          wowGroups(group, "wowGroups", "consolidated write groups"),
          wowMerged(group, "wowMergedWrites",
                    "writes that joined a group"),
          statusPolls(group, "statusPolls",
                      "DIMM status-register polls"),
          irlpMean(group, "irlpMean",
                   "time-weighted busy chips during writes"),
          energyUj(group, "energyUj", "total PCM energy"),
          bitsSet(group, "bitsSet", "SET pulses issued"),
          bitsReset(group, "bitsReset", "RESET pulses issued"),
          readLatencyHistNs(group, "readLatencyHistNs",
                            "read latency percentiles"),
          writeLatencyHistNs(group, "writeLatencyHistNs",
                             "write commit latency percentiles"),
          queueResidencyNs(group, "queueResidencyNs",
                           "arrival-to-service percentiles"),
          writeIrlp(group, "writeIrlp",
                    "busy data chips per write percentiles")
    {
        // Registered only for multi-round (MLC+) organizations: the
        // counters stay zero on SLC, and adding rows there would
        // perturb the byte-stable org=slc stat dump.
        if (multi_round) {
            writeRounds.emplace(group, "writeRounds",
                                "MLC+ programming rounds issued");
            writeRoundPauses.emplace(group, "writeRoundPauses",
                                     "round-boundary pauses for reads");
        }
    }

    /** Summary -> Percentiles values, with ticks scaled by @p scale. */
    static stats::Percentiles::Values
    percentileValues(const obs::LogHistogram &h, double scale)
    {
        const obs::LogHistogram::Summary s = h.summary();
        stats::Percentiles::Values v;
        v.p50 = static_cast<double>(s.p50) * scale;
        v.p90 = static_cast<double>(s.p90) * scale;
        v.p99 = static_cast<double>(s.p99) * scale;
        v.p999 = static_cast<double>(s.p999) * scale;
        v.max = static_cast<double>(s.max) * scale;
        v.mean = s.mean * scale;
        v.samples = static_cast<double>(s.samples);
        return v;
    }

    void
    refresh(const MemoryController &mc)
    {
        const ControllerStats &s = mc.stats();
        readsCompleted.set(static_cast<double>(s.readsCompleted));
        readsForwarded.set(
            static_cast<double>(s.readsForwardedFromWq));
        readsDelayed.set(static_cast<double>(s.readsDelayedByWrite));
        writesCompleted.set(static_cast<double>(s.writesCompleted));
        writesSilent.set(static_cast<double>(s.writesSilent));
        writesCoalesced.set(static_cast<double>(s.writesCoalesced));
        readLatency.set(s.avgReadLatencyNs());
        std::uint64_t writes = 0;
        for (unsigned i = 0; i <= 8; ++i)
            writes += s.essentialHist[i];
        essentialWords.set(
            writes ? static_cast<double>(s.essentialWordsSum) /
                         static_cast<double>(writes)
                   : 0.0);
        rowReads.set(static_cast<double>(s.rowReads));
        eccDeferred.set(static_cast<double>(s.deferredEccReads));
        verifies.set(static_cast<double>(s.verifiesCompleted));
        faults.set(static_cast<double>(s.faultsDetected));
        twoStep.set(static_cast<double>(s.twoStepWrites));
        multiStep.set(static_cast<double>(s.multiStepWrites));
        wowGroups.set(static_cast<double>(s.wowGroups));
        wowMerged.set(static_cast<double>(s.wowMergedWrites));
        statusPolls.set(static_cast<double>(s.statusPolls));
        if (writeRounds)
            writeRounds->set(static_cast<double>(s.writeRoundsIssued));
        if (writeRoundPauses) {
            writeRoundPauses->set(
                static_cast<double>(s.writeRoundPauses));
        }
        irlpMean.set(mc.irlpWindowTicks() > 0.0
                         ? mc.irlpArea() / mc.irlpWindowTicks()
                         : 0.0);
        energyUj.set(mc.energy().breakdown().totalUj());
        bitsSet.set(static_cast<double>(mc.energy().bitsSet()));
        bitsReset.set(static_cast<double>(mc.energy().bitsReset()));
        // Latency histograms sample ticks (picoseconds); export ns.
        readLatencyHistNs.set(percentileValues(s.readLatencyHist, 1e-3));
        writeLatencyHistNs.set(
            percentileValues(s.writeLatencyHist, 1e-3));
        queueResidencyNs.set(
            percentileValues(s.queueResidencyHist, 1e-3));
        writeIrlp.set(percentileValues(s.writeIrlpHist, 1.0));
    }

    stats::StatGroup group;
    stats::Scalar readsCompleted;
    stats::Scalar readsForwarded;
    stats::Scalar readsDelayed;
    stats::Scalar writesCompleted;
    stats::Scalar writesSilent;
    stats::Scalar writesCoalesced;
    stats::Scalar readLatency;
    stats::Scalar essentialWords;
    stats::Scalar rowReads;
    stats::Scalar eccDeferred;
    stats::Scalar verifies;
    stats::Scalar faults;
    stats::Scalar twoStep;
    stats::Scalar multiStep;
    stats::Scalar wowGroups;
    stats::Scalar wowMerged;
    stats::Scalar statusPolls;
    std::optional<stats::Scalar> writeRounds;
    std::optional<stats::Scalar> writeRoundPauses;
    stats::Scalar irlpMean;
    stats::Scalar energyUj;
    stats::Scalar bitsSet;
    stats::Scalar bitsReset;
    stats::Percentiles readLatencyHistNs;
    stats::Percentiles writeLatencyHistNs;
    stats::Percentiles queueResidencyNs;
    stats::Percentiles writeIrlp;
};

SystemStatExport::SystemStatExport(MainMemory &memory) : mem(memory)
{
    for (unsigned ch = 0; ch < mem.channels(); ++ch) {
        mirrors.push_back(std::make_unique<ControllerStatsMirror>(
            mem.controller(ch).name(),
            mem.controller(ch).config().timing.writeRounds > 1));
        rootGroup.addChild(&mirrors.back()->group);
    }
}

SystemStatExport::~SystemStatExport() = default;

void
SystemStatExport::refresh()
{
    for (unsigned ch = 0; ch < mem.channels(); ++ch)
        mirrors[ch]->refresh(mem.controller(ch));
}

void
SystemStatExport::dump(std::ostream &os)
{
    refresh();
    rootGroup.dump(os);
}

} // namespace pcmap
