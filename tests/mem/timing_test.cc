/**
 * @file
 * Tests for the PCM timing parameter derivations.
 */

#include <gtest/gtest.h>

#include "mem/timing.h"

namespace pcmap {
namespace {

TEST(PcmTiming, DefaultsMatchTableI)
{
    const PcmTiming t;
    EXPECT_EQ(t.tCL, 5u);
    EXPECT_EQ(t.tWL, 4u);
    EXPECT_EQ(t.tCCD, 4u);
    EXPECT_EQ(t.tWTR, 4u);
    EXPECT_EQ(t.tStatus, 2u);
    EXPECT_DOUBLE_EQ(t.arrayReadNs, 60.0);
    EXPECT_DOUBLE_EQ(t.resetNs, 50.0);
    EXPECT_DOUBLE_EQ(t.setNs, 120.0);
    t.validate();
}

TEST(PcmTiming, WriteLatencyIsSetDominated)
{
    PcmTiming t;
    EXPECT_DOUBLE_EQ(t.arrayWriteNs(), 120.0);
    t.resetNs = 200.0;
    EXPECT_DOUBLE_EQ(t.arrayWriteNs(), 200.0);
}

TEST(PcmTiming, DerivedTickValues)
{
    const PcmTiming t;
    EXPECT_EQ(t.cycles(1), 2500u);             // 400 MHz
    EXPECT_EQ(t.burstTicks(), 10000u);         // 4 cycles
    EXPECT_EQ(t.readColTicks(), 12500u);       // tCL = 5
    EXPECT_EQ(t.writeColTicks(), 10000u);      // tWL = 4
    EXPECT_EQ(t.arrayReadTicks(), 60000u);     // 60 ns
    EXPECT_EQ(t.arrayWriteTicks(), 120000u);   // 120 ns
    EXPECT_EQ(t.actTicks(), t.arrayReadTicks());
    EXPECT_EQ(t.statusTicks(), 5000u);         // 2 cycles
}

TEST(PcmTiming, TransactionOccupancies)
{
    const PcmTiming t;
    EXPECT_EQ(t.readHitTicks(), 12500u + 10000u);
    EXPECT_EQ(t.readMissTicks(), 60000u + 12500u + 10000u);
    EXPECT_EQ(t.chipWriteTicks(), 10000u + 10000u + 120000u);
    EXPECT_EQ(t.chipCompareTicks(), 10000u + 10000u + 60000u);
}

TEST(PcmTiming, WriteToReadRatioSweep)
{
    // The Table III study: fixed 120 ns write, read swept.
    for (const double ratio : {2.0, 4.0, 6.0, 8.0}) {
        PcmTiming t;
        t.arrayReadNs = 120.0 / ratio;
        t.validate();
        EXPECT_DOUBLE_EQ(t.arrayWriteNs() / t.arrayReadNs, ratio);
    }
}

TEST(PcmTiming, WriteIsSlowerThanReadByDefault)
{
    const PcmTiming t;
    EXPECT_GT(t.chipWriteTicks(), t.readMissTicks());
}

TEST(PcmTimingDeath, NonPositiveLatencyIsFatal)
{
    PcmTiming t;
    t.arrayReadNs = 0.0;
    EXPECT_EXIT(t.validate(), ::testing::ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace pcmap
