/**
 * @file
 * fig-cache: the DRAM cache tier's filtering effect on PCM traffic.
 *
 * Sweeps tier shape (none plus sizes x replacement policies) against
 * device organization and system mode, and prints one table per
 * (system, organization): tier hit rate, PCM writes actually
 * committed behind the tier, dirty words per write-back, read
 * latency, and — because every point runs through the request fabric
 * — per-tenant p99 read latency, so the table shows how cache
 * filtering reshapes the tail, not just the mean.  This is the tiered
 * memory extension study, not a figure from the paper.
 *
 * Harness-specific keys (plus the common ones in bench_common.h):
 *   sizes=LIST    tier capacities, one curve row each, with K/M/G
 *                 suffixes (default 1M,4M)
 *   ways=N        tier associativity (default 8)
 *   repl=LIST     replacement policies, lru | mac (default lru,mac)
 *   workload=W    workload name for the per-core profiles
 *                 (default MP1)
 *   modes=LIST    system modes, or all | pcmap (default Baseline)
 *
 * The fabric keys (tenants=, rate=, ...) default to a 2-tenant
 * Poisson 8/us mixed-QoS stream over a 16 GB/s + 20 ns link when not
 * given, so the fabric -> cache -> PCM composition is exercised by
 * default and the p99 column is always measured.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/tier.h"
#include "sim/log.h"
#include "sweep/sweep_io.h"

namespace {

using namespace pcmap;

/** Flat-stat lookup; 0.0 when the key is absent. */
double
stat(const sweep::RunRecord &rec, const std::string &key)
{
    for (const auto &kv : rec.stats) {
        if (kv.first == key)
            return kv.second;
    }
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pcmap::bench;

    HarnessConfig hc = HarnessConfig::parse(argc, argv);
    banner("DRAM cache tier: hit rate vs PCM write traffic vs tail",
           "tiered-memory extension study (not a paper figure)", hc);
    HostReport host;

    const Config &args = hc.raw;
    const std::vector<std::string> sizes =
        sweep::splitCommas(args.getString("sizes", "1M,4M"));
    if (sizes.empty())
        fatal("sizes= needs at least one capacity");
    const auto ways = static_cast<unsigned>(args.getUint("ways", 8));
    std::vector<std::string> repls =
        sweep::splitCommas(args.getString("repl", "lru,mac"));
    if (repls.empty())
        fatal("repl= needs at least one policy");
    const std::string workload = args.getString("workload", "MP1");
    const std::vector<SystemMode> modes =
        sweep::parseModes(args.getString("modes", "Baseline"));

    // Default fabric: two open-loop tenants over a real link, so the
    // p99 column is measured through the full stack even when no
    // fabric keys are given.
    fabric::FabricConfig fab = hc.fabric;
    if (!fab.enabled()) {
        fab.tenants.resize(2);
        for (unsigned t = 0; t < 2; ++t) {
            fabric::TenantSpec &ts = fab.tenants[t];
            ts.ratePerUs = 8.0;
            ts.arrival = fabric::ArrivalKind::Poisson;
            ts.qos = t == 0 ? fabric::QosClass::LatencySensitive
                            : fabric::QosClass::BestEffort;
            ts.requests = 4000;
        }
        fab.linkGbps = 16.0;
        fab.linkNs = 20.0;
    }

    // The tier axis: "none" first (the uncached baseline row), then
    // every size x replacement-policy combination.
    std::vector<cache::TierConfig> tiers;
    tiers.emplace_back(); // tier=none
    for (const std::string &size : sizes) {
        for (const std::string &repl : repls) {
            tiers.push_back(cache::tierConfigFromString(
                "dram:" + size + ":" + std::to_string(ways) + ":" +
                repl));
        }
    }

    sweep::SweepSpec spec;
    spec.configs.clear();
    for (const cache::TierConfig &tier : tiers) {
        sweep::ConfigVariant v;
        v.name = cache::tierConfigToString(tier);
        v.base = hc.system(SystemMode::Baseline);
        v.base.fabric = fab;
        v.base.tier = tier;
        spec.configs.push_back(v);
    }
    spec.modes = modes;
    spec.policies = hc.policies;
    spec.workloads = {workload};
    spec.seeds = {hc.seed};
    spec.orgs = hc.orgs;

    sweep::SweepRunner::Options opts;
    opts.threads = hc.threads;
    opts.collectStats = true;
    opts.obs = hc.obs.obs;
    opts.obsPathPrefix = hc.obs.pathPrefix;
    const sweep::SweepReport report =
        sweep::SweepRunner(opts).run(spec);

    if (!hc.jsonl.empty()) {
        std::ofstream out(hc.jsonl);
        if (!out)
            fatal("cannot open '", hc.jsonl, "' for writing");
        sweep::writeJsonl(report, out);
    }

    std::printf("\nfabric: %u tenants, link %gGB/s + %gns; "
                "tier ways=%u workload=%s\n",
                static_cast<unsigned>(fab.tenants.size()), fab.linkGbps,
                fab.linkNs, ways, workload.c_str());

    for (const DeviceOrg org : hc.orgs) {
        std::vector<std::string> labels;
        for (const SystemMode mode : modes)
            labels.emplace_back(systemModeName(mode));
        labels.insert(labels.end(), hc.policies.begin(),
                      hc.policies.end());
        if (org != DeviceOrg::Slc) {
            for (std::string &l : labels)
                l += std::string("@") + deviceOrgName(org);
        }
        for (const std::string &label : labels) {
            std::printf("\n== %s ==\n", label.c_str());
            std::printf("%-22s %7s %9s %9s %8s %8s %8s %8s\n", "tier",
                        "hitRate", "pcmWrites", "dirtyW/WB", "readLat",
                        "t0.p99", "wbBatch", "ipcSum");
            rule(86);
            for (const cache::TierConfig &tier : tiers) {
                const std::string name =
                    cache::tierConfigToString(tier);
                const sweep::RunRecord *rec =
                    report.find(name, label, workload, hc.seed);
                if (rec == nullptr || !rec->ok) {
                    std::printf("%-22s  (run failed)\n", name.c_str());
                    continue;
                }
                const double wbs = stat(*rec, "cache.writebacks");
                const double dirty_per_wb =
                    wbs > 0.0
                        ? stat(*rec, "cache.dirtyWordsWrittenBack") /
                              wbs
                        : 0.0;
                std::printf(
                    "%-22s %7.3f %9.0f %9.2f %7.1fns %7.1f %8.1f "
                    "%8.3f\n",
                    name.c_str(), stat(*rec, "cache.hitRate"),
                    static_cast<double>(rec->results.writesCompleted),
                    dirty_per_wb, rec->results.avgReadLatencyNs,
                    stat(*rec, "fabric.tenant0.read.p99"),
                    stat(*rec, "cache.writebackBatch.mean"),
                    rec->results.ipcSum);
            }
        }
    }

    for (const sweep::RunRecord &rec : report.rows) {
        if (rec.ok)
            host.add(rec.results);
    }
    host.print();
    return report.failures() == 0 ? 0 : 1;
}
