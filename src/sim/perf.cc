#include "sim/perf.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/utsname.h>
#endif

namespace pcmap::perf {

long
peakRssKb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return ru.ru_maxrss / 1024; // bytes on Darwin
#else
    return ru.ru_maxrss; // KiB on Linux
#endif
#else
    return 0;
#endif
}

MachineInfo
machineInfo()
{
    MachineInfo mi;
    mi.hardwareThreads = std::thread::hardware_concurrency();
#if defined(__unix__) || defined(__APPLE__)
    struct utsname un{};
    if (uname(&un) == 0) {
        mi.host = un.nodename;
        mi.os = std::string(un.sysname) + " " + un.release + " " +
                un.machine;
    }
#endif
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const auto key_end = line.find(':');
        if (key_end == std::string::npos)
            continue;
        if (line.compare(0, 10, "model name") == 0) {
            auto v = line.find_first_not_of(" \t", key_end + 1);
            if (v != std::string::npos)
                mi.cpu = line.substr(v);
            break;
        }
    }
    return mi;
}

namespace {

double
rate(std::uint64_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

} // namespace

double
RunMetrics::eventsPerSec() const
{
    return rate(eventsExecuted, wallSeconds);
}

double
RunMetrics::requestsPerSec() const
{
    return rate(requestsCompleted, wallSeconds);
}

double
RunMetrics::instsPerSec() const
{
    return rate(instructions, wallSeconds);
}

RunMetrics &
RunMetrics::operator+=(const RunMetrics &other)
{
    wallSeconds += other.wallSeconds;
    eventsExecuted += other.eventsExecuted;
    scheduleCalls += other.scheduleCalls;
    requestsCompleted += other.requestsCompleted;
    instructions += other.instructions;
    simTicks += other.simTicks;
    return *this;
}

std::string
summaryLine(const RunMetrics &m)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "events/s=%.3g reqs/s=%.3g insts/s=%.3g wall=%.3fs",
                  m.eventsPerSec(), m.requestsPerSec(), m.instsPerSec(),
                  m.wallSeconds);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", c);
                out += esc;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJson(const RunMetrics &m, std::ostream &os)
{
    std::ostringstream body;
    body << "{\"label\": \"" << jsonEscape(m.label) << "\""
         << ", \"wall_s\": " << m.wallSeconds
         << ", \"events\": " << m.eventsExecuted
         << ", \"schedule_calls\": " << m.scheduleCalls
         << ", \"events_per_sec\": " << m.eventsPerSec()
         << ", \"reqs\": " << m.requestsCompleted
         << ", \"reqs_per_sec\": " << m.requestsPerSec()
         << ", \"insts\": " << m.instructions
         << ", \"insts_per_sec\": " << m.instsPerSec()
         << ", \"sim_ticks\": " << m.simTicks << "}";
    os << body.str();
}

void
writeJson(const MachineInfo &mi, std::ostream &os)
{
    os << "{\"host\": \"" << jsonEscape(mi.host) << "\""
       << ", \"os\": \"" << jsonEscape(mi.os) << "\""
       << ", \"cpu\": \"" << jsonEscape(mi.cpu) << "\""
       << ", \"hardware_threads\": " << mi.hardwareThreads << "}";
}

} // namespace pcmap::perf
