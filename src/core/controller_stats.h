/**
 * @file
 * Aggregate counters exposed by a memory controller for harvesting.
 *
 * Lives in its own header so the policy objects (access scheduler,
 * write coalescer) can account into the counters without depending on
 * the full controller.
 */

#ifndef PCMAP_CORE_CONTROLLER_STATS_H
#define PCMAP_CORE_CONTROLLER_STATS_H

#include <cstdint>

#include "mem/line.h"
#include "obs/histogram.h"
#include "sim/types.h"

namespace pcmap {

/** Aggregate counters exposed by a controller for harvesting. */
struct ControllerStats
{
    std::uint64_t readsEnqueued = 0;
    std::uint64_t readsCompleted = 0;
    std::uint64_t readsForwardedFromWq = 0;
    std::uint64_t readsDelayedByWrite = 0;
    std::uint64_t readsRejected = 0;

    std::uint64_t writesEnqueued = 0;
    std::uint64_t writesCoalesced = 0;
    std::uint64_t writesCompleted = 0;
    std::uint64_t writesSilent = 0;
    std::uint64_t writesRejected = 0;

    double readLatencySum = 0.0;  ///< ticks, completion - enqueue
    double readLatencyMax = 0.0;
    double readQueueWaitSum = 0.0; ///< ticks, issue-start - enqueue
    std::uint64_t readsIssuedDuringDrain = 0;

    std::uint64_t essentialWordsSum = 0;
    std::uint64_t essentialHist[kWordsPerLine + 1] = {};

    std::uint64_t rowReads = 0;        ///< reads served by reconstruction
    std::uint64_t deferredEccReads = 0;///< reads with ECC check deferred
    std::uint64_t verifiesCompleted = 0;
    std::uint64_t faultsDetected = 0;

    std::uint64_t twoStepWrites = 0;   ///< 1-word writes split for RoW
    std::uint64_t multiStepWrites = 0; ///< §IV-B4 serialized writes
    std::uint64_t writesCancelled = 0; ///< write-cancellation events
    std::uint64_t presetsIssued = 0;   ///< background line pre-SETs
    std::uint64_t presetWrites = 0;    ///< writes served RESET-only
    std::uint64_t wowGroups = 0;       ///< write groups with >= 2 writes
    std::uint64_t wowMergedWrites = 0; ///< writes that joined a group
    std::uint64_t wowGroupSizeSum = 0;
    std::uint64_t bgOpsIssued = 0;
    std::uint64_t bgOpsForced = 0;     ///< aged out and issued foreground
    std::uint64_t statusPolls = 0;

    // Multi-round (MLC+) write programming.  Both stay zero for
    // single-round organizations, so org=slc output is unchanged and
    // downstream exporters gate on writeRoundsIssued > 0.
    std::uint64_t writeRoundsIssued = 0; ///< programming rounds issued
    std::uint64_t writeRoundPauses = 0;  ///< round-boundary pauses/cancels

    // Latency-class distributions (always sampled; the log-bucketed
    // histogram is a few ALU ops per sample and never allocates, so
    // there is no toggle to invalidate the percentile exports).
    obs::LogHistogram readLatencyHist;    ///< ticks, completion - enqueue
    obs::LogHistogram writeLatencyHist;   ///< ticks, commit - enqueue
    obs::LogHistogram queueResidencyHist; ///< ticks, service - enqueue
    obs::LogHistogram writeIrlpHist;      ///< busy data chips per write

    /** Mean effective read latency in nanoseconds. */
    double
    avgReadLatencyNs() const
    {
        return readsCompleted
                   ? ticksToNs(static_cast<Tick>(
                         readLatencySum /
                         static_cast<double>(readsCompleted)))
                   : 0.0;
    }
};

} // namespace pcmap

#endif // PCMAP_CORE_CONTROLLER_STATS_H
