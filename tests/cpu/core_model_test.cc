/**
 * @file
 * Tests for the core model against a scripted memory port: compute
 * throughput, stall coupling, MLP, MSHR limits, back-pressure, and
 * the speculative-read rollback machinery.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "cpu/core_model.h"
#include "sim/event_queue.h"

namespace pcmap {
namespace {

/** Memory port with a fixed service latency and scriptable refusals. */
class MockPort : public MemoryPort
{
  public:
    explicit MockPort(EventQueue &eq) : eventq(eq) {}

    bool
    enqueueRead(const MemRequest &req, ReadCallback cb) override
    {
        if (rejectReads > 0) {
            --rejectReads;
            return false;
        }
        ++readsAccepted;
        ReadResponse resp;
        resp.id = req.id;
        resp.addr = req.addr;
        resp.coreId = req.coreId;
        resp.speculative = nextSpeculative;
        eventq.schedule(eventq.now() + readLatency,
                        [this, resp, cb]() mutable {
                            resp.completionTick = eventq.now();
                            cb(resp);
                        });
        if (nextSpeculative)
            specIds.push_back(req.id);
        return true;
    }

    bool
    enqueueWrite(const MemRequest &req) override
    {
        (void)req;
        if (rejectWrites > 0) {
            --rejectWrites;
            return false;
        }
        ++writesAccepted;
        return true;
    }

    void setRetryCallback(RetryCallback cb) override
    {
        retry = std::move(cb);
    }
    void setVerifyCallback(VerifyCallback cb) override
    {
        verify = std::move(cb);
    }

    void fireRetry() { if (retry) retry(); }

    EventQueue &eventq;
    Tick readLatency = 100 * kNanosecond;
    bool nextSpeculative = false;
    int rejectReads = 0;
    int rejectWrites = 0;
    int readsAccepted = 0;
    int writesAccepted = 0;
    std::vector<ReqId> specIds;
    RetryCallback retry;
    VerifyCallback verify;
};

/** Source replaying a scripted list of operations. */
class ScriptedSource : public RequestSource
{
  public:
    bool
    next(MemOp &op) override
    {
        if (pos >= ops.size())
            return false;
        op = ops[pos++];
        return true;
    }

    std::vector<MemOp> ops;
    std::size_t pos = 0;
};

MemOp
readOp(std::uint64_t gap, std::uint64_t addr)
{
    MemOp op;
    op.gapInsts = gap;
    op.addr = addr;
    return op;
}

MemOp
writeOp(std::uint64_t gap, std::uint64_t addr)
{
    MemOp op;
    op.gapInsts = gap;
    op.isWrite = true;
    op.addr = addr;
    return op;
}

class CoreModelTest : public ::testing::Test
{
  protected:
    void
    build(std::uint64_t insts,
          const std::function<void(CoreConfig &)> &tweak = {})
    {
        CoreConfig cfg;
        if (tweak)
            tweak(cfg);
        port = std::make_unique<MockPort>(eq);
        core = std::make_unique<CoreModel>(0, cfg, eq, *port, src,
                                           insts);
    }

    EventQueue eq;
    ScriptedSource src;
    std::unique_ptr<MockPort> port;
    std::unique_ptr<CoreModel> core;
};

TEST_F(CoreModelTest, PureComputeRunsAtIssueWidth)
{
    build(10000);
    core->start();
    eq.run();
    EXPECT_TRUE(core->finished());
    // 10000 insts at width 4 on a 2.5 GHz clock: 2500 cycles = 1 us.
    EXPECT_EQ(core->stats().finishTick, kMicrosecond);
    EXPECT_DOUBLE_EQ(core->ipc(), 4.0);
}

TEST_F(CoreModelTest, ReadStallCoupledToLatency)
{
    src.ops = {readOp(0, 64)};
    build(1000, [](CoreConfig &c) { c.robWindowInsts = 0; });
    core->start();
    eq.run();
    EXPECT_TRUE(core->finished());
    // Stalled immediately on the read (window 0), then computed.
    const Tick compute = kCoreClock.cyclesToTicks(1000 / 4);
    EXPECT_EQ(core->stats().finishTick,
              port->readLatency + compute);
    EXPECT_EQ(core->stats().readStalls, 1u);
    EXPECT_EQ(core->stats().readStallTicks, port->readLatency);
}

TEST_F(CoreModelTest, RobWindowHidesLatency)
{
    // The core slides robWindow insts past the load before stalling,
    // so a short-latency read is fully hidden.
    src.ops = {readOp(0, 64)};
    build(1000, [this](CoreConfig &c) {
        c.robWindowInsts = 1000;
        (void)this;
    });
    port->readLatency = 10 * kNanosecond; // < compute time of 1000 insts
    core->start();
    eq.run();
    EXPECT_EQ(core->stats().finishTick,
              kCoreClock.cyclesToTicks(1000 / 4));
    EXPECT_EQ(core->stats().readStalls, 0u);
}

TEST_F(CoreModelTest, IndependentReadsOverlap)
{
    // Two loads 10 insts apart with a 128-inst window: both in
    // flight together, total time ~ one latency, not two.
    src.ops = {readOp(0, 64), readOp(10, 128)};
    build(2000);
    core->start();
    eq.run();
    const Tick compute = kCoreClock.cyclesToTicks(2000 / 4);
    // Serial service would cost both latencies on top of compute;
    // overlapped service hides all but one.
    EXPECT_LT(core->stats().finishTick,
              compute + 2 * port->readLatency);
    EXPECT_GE(core->stats().finishTick, compute);
    EXPECT_EQ(core->stats().readsIssued, 2u);
}

TEST_F(CoreModelTest, MshrLimitSerializesReads)
{
    src.ops = {readOp(0, 64), readOp(0, 128)};
    build(2000, [](CoreConfig &c) { c.maxOutstandingReads = 1; });
    core->start();
    eq.run();
    EXPECT_GE(core->stats().finishTick, 2 * port->readLatency);
}

TEST_F(CoreModelTest, WritesAreFireAndForget)
{
    src.ops = {writeOp(0, 64), writeOp(0, 128), writeOp(0, 192)};
    build(1000);
    core->start();
    eq.run();
    EXPECT_EQ(port->writesAccepted, 3);
    // No stall: finishes at pure compute speed.
    EXPECT_EQ(core->stats().finishTick,
              kCoreClock.cyclesToTicks(1000 / 4));
    EXPECT_EQ(core->stats().writesIssued, 3u);
}

TEST_F(CoreModelTest, WriteRejectionStallsUntilRetry)
{
    src.ops = {writeOp(0, 64)};
    build(1000);
    port->rejectWrites = 1;
    core->start();
    eq.run();
    EXPECT_FALSE(core->finished()); // blocked waiting for retry
    eq.schedule(eq.now() + 50 * kNanosecond,
                [this] { core->onRetry(); });
    eq.run();
    EXPECT_TRUE(core->finished());
    EXPECT_EQ(port->writesAccepted, 1);
    EXPECT_GE(core->stats().retryStallTicks, 50 * kNanosecond);
}

TEST_F(CoreModelTest, ReadRejectionStallsUntilRetry)
{
    src.ops = {readOp(0, 64)};
    build(1000);
    port->rejectReads = 1;
    core->start();
    eq.run();
    EXPECT_FALSE(core->finished());
    eq.schedule(eq.now() + kNanosecond, [this] { core->onRetry(); });
    eq.run();
    EXPECT_TRUE(core->finished());
    EXPECT_EQ(port->readsAccepted, 1);
}

TEST_F(CoreModelTest, SpeculativeReadCountsAndVerifyClean)
{
    src.ops = {readOp(0, 64)};
    build(1000);
    port->nextSpeculative = true;
    core->start();
    eq.run();
    EXPECT_EQ(core->stats().specReadsSeen, 1u);
    // Clean verification long after consumption: no rollback.
    core->onVerify(port->specIds.at(0), false);
    EXPECT_EQ(core->stats().rollbacks, 0u);
}

TEST_F(CoreModelTest, FaultAfterConsumptionRollsBack)
{
    src.ops = {readOp(0, 64)};
    build(100000);
    port->nextSpeculative = true;
    core->start();
    // Let the read return and be consumed (past the commit delay),
    // then deliver the fault.
    eq.run(port->readLatency + 500 * kNanosecond);
    ASSERT_EQ(port->specIds.size(), 1u);
    core->onVerify(port->specIds[0], true);
    eq.run();
    EXPECT_TRUE(core->finished());
    EXPECT_EQ(core->stats().rollbacks, 1u);
    EXPECT_EQ(core->stats().consumedBeforeVerify, 1u);
    EXPECT_GT(core->stats().rollbackTicks, 0u);
}

TEST_F(CoreModelTest, FaultBeforeConsumptionIsFree)
{
    src.ops = {readOp(0, 64)};
    build(100000, [](CoreConfig &c) {
        c.commitDelay = kMillisecond; // consumption far in the future
    });
    port->nextSpeculative = true;
    core->start();
    eq.run(port->readLatency + kNanosecond);
    ASSERT_EQ(port->specIds.size(), 1u);
    core->onVerify(port->specIds[0], true); // before consumedTick
    eq.run();
    EXPECT_EQ(core->stats().rollbacks, 0u);
    EXPECT_EQ(core->stats().consumedBeforeVerify, 0u);
}

TEST_F(CoreModelTest, AlwaysFaultyModeRollsBackCleanReads)
{
    src.ops = {readOp(0, 64)};
    build(100000, [](CoreConfig &c) { c.assumeAlwaysFaulty = true; });
    port->nextSpeculative = true;
    core->start();
    eq.run(port->readLatency + 500 * kNanosecond);
    core->onVerify(port->specIds.at(0), false); // clean, yet faulted
    eq.run();
    EXPECT_EQ(core->stats().rollbacks, 1u);
}

TEST_F(CoreModelTest, UnknownVerifyIdIgnored)
{
    build(1000);
    core->start();
    core->onVerify(12345, true);
    eq.run();
    EXPECT_EQ(core->stats().rollbacks, 0u);
}

TEST_F(CoreModelTest, SourceExhaustionFallsBackToCompute)
{
    src.ops = {readOp(10, 64)};
    build(50000);
    core->start();
    eq.run();
    EXPECT_TRUE(core->finished());
    EXPECT_EQ(core->stats().instRetired, 50000u);
}

TEST_F(CoreModelTest, GapDelaysOpIssue)
{
    src.ops = {readOp(4000, 64)};
    build(8000, [](CoreConfig &c) { c.robWindowInsts = 0; });
    core->start();
    eq.run();
    // 4000 insts (1000 cycles) before the read even issues.
    EXPECT_GE(core->stats().finishTick,
              kCoreClock.cyclesToTicks(1000) + port->readLatency);
}

} // namespace
} // namespace pcmap
