# Empty compiler generated dependencies file for fig02_dirty_words.
# This may be replaced when dependencies are built.
