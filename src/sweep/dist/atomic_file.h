/**
 * @file
 * Crash-safe whole-file writes.
 *
 * Every artifact a sweep persists (full JSONL/CSV reports, shard
 * partials) goes through atomicWriteFile(): the content lands in
 * `<path>.tmp`, is fsync()ed, and is then rename()d over the final
 * path.  A run killed at any instant therefore leaves either the old
 * file, no file, or the complete new file — never a truncated one
 * that a later `resume=` or merge would misread.
 */

#ifndef PCMAP_SWEEP_DIST_ATOMIC_FILE_H
#define PCMAP_SWEEP_DIST_ATOMIC_FILE_H

#include <string>

namespace pcmap::sweep::dist {

/**
 * Atomically replace @p path with @p content (write tmp, fsync,
 * rename).  fatal() on any I/O error, naming the failing path.
 */
void atomicWriteFile(const std::string &path,
                     const std::string &content);

/** Read a whole file into a string; fatal() when it cannot be read. */
std::string readFile(const std::string &path);

} // namespace pcmap::sweep::dist

#endif // PCMAP_SWEEP_DIST_ATOMIC_FILE_H
