/**
 * @file
 * PCM device and interface timing parameters.
 *
 * Defaults reproduce Table I of the paper: a 400 MHz DDR3-style
 * interface in front of SLC PCM arrays with 60 ns reads, 50 ns RESET
 * and 120 ns SET pulses.  The interface constants (tCL, tWL, ...) are
 * expressed in memory-bus cycles exactly as the paper lists them; the
 * array latencies are in nanoseconds so the write-to-read latency
 * ratio study (Table III) can sweep them independently.
 */

#ifndef PCMAP_MEM_TIMING_H
#define PCMAP_MEM_TIMING_H

#include "sim/types.h"

namespace pcmap {

/** Timing parameters for the PCM memory system. */
struct PcmTiming
{
    /** Memory interface clock (400 MHz => 2.5 ns per cycle). */
    ClockDomain memClock = kMemClock;

    // --- Interface constants, in memory-bus cycles (Table I) ---
    Cycles tRCD = 60;    ///< Activate to column command (array read).
    Cycles tCL = 5;      ///< Column read to first data beat.
    Cycles tWL = 4;      ///< Column write to first data beat.
    Cycles tCCD = 4;     ///< Column-to-column delay (burst of 8).
    Cycles tWTR = 4;     ///< Write-to-read bus turnaround.
    Cycles tRTP = 3;     ///< Read to precharge.
    Cycles tRP = 60;     ///< Precharge (row-buffer close).
    Cycles tRRDact = 2;  ///< Activate-to-activate, different banks.
    Cycles tRRDpre = 11; ///< Precharge-to-activate, different banks.
    Cycles tStatus = 2;  ///< DIMM status-register poll (Section IV-D1).

    // --- PCM cell/array latencies, in nanoseconds ---
    double arrayReadNs = 60.0;   ///< Array read (also read-before-write).
    double resetNs = 50.0;       ///< RESET (amorphize) pulse.
    double setNs = 120.0;        ///< SET (crystallize) pulse.

    /**
     * Effective cell-write time for a word that changed.  A real
     * differential write takes max(SET, RESET) over the flipped bits;
     * with both polarities almost always present in an 8-byte word,
     * the SET pulse dominates, which is also the paper's assumption
     * (write latency = 120 ns = 2x the 60 ns read).
     */
    double arrayWriteNs() const { return setNs > resetNs ? setNs : resetNs; }

    // --- Derived tick values ---
    Tick cycles(Cycles c) const { return memClock.cyclesToTicks(c); }

    /** Burst of 8 beats on a DDR bus occupies 4 bus cycles. */
    Tick burstTicks() const { return cycles(4); }

    /**
     * Row activation brings a row from the PCM array into the row
     * buffer, which is dominated by the 60 ns array read — unlike
     * DRAM, where tRCD is an interface constant.  (Table I's
     * "tRDC=60 cycles" is inconsistent with its own 60 ns cell read;
     * we resolve the conflict in favour of the device physics.)
     */
    Tick actTicks() const { return arrayReadTicks(); }
    Tick readColTicks() const { return cycles(tCL); }
    Tick writeColTicks() const { return cycles(tWL); }
    Tick turnaroundTicks() const { return cycles(tWTR); }
    Tick prechargeTicks() const { return cycles(tRP); }
    Tick statusTicks() const { return cycles(tStatus); }

    Tick arrayReadTicks() const { return nsToTicks(arrayReadNs); }
    Tick arrayWriteTicks() const { return nsToTicks(arrayWriteNs()); }

    /**
     * Total bank-occupancy of a row-hit read transaction: column read
     * plus the data burst.
     */
    Tick
    readHitTicks() const
    {
        return readColTicks() + burstTicks();
    }

    /**
     * Total bank-occupancy of a row-miss read: activation (the array
     * read) plus the row-hit path.
     */
    Tick
    readMissTicks() const
    {
        return actTicks() + readHitTicks();
    }

    /**
     * Bank/chip occupancy of writing one word into the PCM array:
     * column write, burst, then the cell write pulse.  The read-
     * before-write comparison happens inside the array write window
     * (the chip overlaps it with the pulse setup), matching the
     * paper's flat 120 ns write service time.
     */
    Tick
    chipWriteTicks() const
    {
        return writeColTicks() + burstTicks() + arrayWriteTicks();
    }

    /**
     * Occupancy of a chip that participates in a coarse write but
     * whose word is unmodified: it only performs the internal
     * read-compare before dropping the write.
     */
    Tick
    chipCompareTicks() const
    {
        return writeColTicks() + burstTicks() + arrayReadTicks();
    }

    /** Sanity-check parameter ranges; fatal() on nonsense. */
    void validate() const;
};

} // namespace pcmap

#endif // PCMAP_MEM_TIMING_H
