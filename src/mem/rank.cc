#include "mem/rank.h"

#include <algorithm>

#include "sim/log.h"

namespace pcmap {

Rank::Rank(unsigned banks, bool has_pcc)
    : numBanks(banks), pccPresent(has_pcc),
      states(static_cast<std::size_t>(kChipsPerRank) * banks)
{
    pcmap_assert(banks > 0);
}

ChipBankState &
Rank::state(unsigned chip, unsigned bank)
{
    pcmap_assert(chip < kChipsPerRank && bank < numBanks);
    return states[static_cast<std::size_t>(chip) * numBanks + bank];
}

const ChipBankState &
Rank::state(unsigned chip, unsigned bank) const
{
    pcmap_assert(chip < kChipsPerRank && bank < numBanks);
    return states[static_cast<std::size_t>(chip) * numBanks + bank];
}

Tick
Rank::chipFreeAt(unsigned chip, unsigned bank) const
{
    return std::max(state(chip, bank).busyUntil, writeBusyUntil[chip]);
}

void
Rank::closeRow(unsigned chip, unsigned bank)
{
    state(chip, bank).openRow = -1;
}

void
Rank::abortWrite(unsigned chip, unsigned bank, Tick now)
{
    ChipBankState &s = state(chip, bank);
    if (s.busyUntil > now)
        s.busyUntil = now;
    s.busyWithWrite = false;
    if (writeBusyUntil[chip] > now)
        writeBusyUntil[chip] = now;
}

Tick
Rank::freeAt(ChipMask chips, unsigned bank) const
{
    Tick latest = 0;
    for (unsigned c = 0; c < kChipsPerRank; ++c) {
        if (!(chips & (1u << c)))
            continue;
        pcmap_assert(pccPresent || c != kPccSlot);
        latest = std::max(latest, chipFreeAt(c, bank));
    }
    return latest;
}

bool
Rank::rowOpen(unsigned chip, unsigned bank, std::uint64_t row) const
{
    const ChipBankState &s = state(chip, bank);
    return s.openRow == static_cast<std::int64_t>(row);
}

bool
Rank::rowOpenAll(ChipMask chips, unsigned bank, std::uint64_t row) const
{
    for (unsigned c = 0; c < kChipsPerRank; ++c) {
        if ((chips & (1u << c)) && !rowOpen(c, bank, row))
            return false;
    }
    return true;
}

void
Rank::reserveChip(unsigned chip, unsigned bank, std::uint64_t row,
                  Tick start, Tick end, bool is_write)
{
    ChipBankState &s = state(chip, bank);
    if (start < chipFreeAt(chip, bank)) {
        pcmap_panic("overlapping reservation on chip ", chip, " bank ",
                    bank, ": start ", start, " < free-at ",
                    chipFreeAt(chip, bank));
    }
    pcmap_assert(end >= start);
    pcmap_assert(pccPresent || chip != kPccSlot);
    s.openRow = static_cast<std::int64_t>(row);
    s.busyUntil = end;
    s.busyWithWrite = is_write;
    if (is_write)
        writeBusyUntil[chip] = std::max(writeBusyUntil[chip], end);
}

ChipMask
Rank::busyChips(unsigned bank, Tick now) const
{
    ChipMask mask = 0;
    for (unsigned c = 0; c < kChipsPerRank; ++c) {
        if (chipFreeAt(c, bank) > now)
            mask |= static_cast<ChipMask>(1u << c);
    }
    return mask;
}

ChipMask
Rank::busyWriteChips(unsigned bank, Tick now) const
{
    ChipMask mask = 0;
    for (unsigned c = 0; c < kChipsPerRank; ++c) {
        const ChipBankState &s = state(c, bank);
        const bool bank_write = s.busyUntil > now && s.busyWithWrite;
        if (bank_write || writeBusyUntil[c] > now)
            mask |= static_cast<ChipMask>(1u << c);
    }
    return mask;
}

} // namespace pcmap
