#include "core/system.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "core/policy/controller_policy.h"
#include "fabric/link_model.h"
#include "fabric/tenant.h"
#include "obs/observer.h"
#include "sim/log.h"
#include "workload/profile.h"

namespace pcmap {

ControllerConfig
SystemConfig::controllerConfig() const
{
    ControllerConfig mc = ControllerConfig::forMode(mode);
    if (!policy.empty()) {
        std::string err;
        const std::optional<ControllerPolicy> p =
            ControllerPolicy::parse(policy, &err);
        if (!p)
            fatal("policy: ", err);
        p->applyTo(mc);
    }
    mc.timing = timing;
    mc.banksPerRank = geometry.banksPerRank;
    mc.readQueueCap = readQueueCap;
    mc.writeQueueCap = writeQueueCap;
    mc.drainHighWatermark = drainHighWatermark;
    mc.drainLowWatermark = drainLowWatermark;
    mc.modelCodeUpdateTraffic = modelCodeUpdateTraffic;
    mc.modelVerifyTraffic = modelVerifyTraffic;
    mc.serveReadsDuringDrain = serveReadsDuringDrain;
    mc.enableTwoStep = enableTwoStep;
    mc.rowMultiWordWrites = rowMultiWordWrites;
    mc.pagePolicy = pagePolicy;
    mc.readScheduling = readScheduling;
    mc.perBankWriteQueues = perBankWriteQueues;
    mc.enableWriteCancellation = enableWriteCancellation;
    mc.enablePreset = enablePreset;
    mc.codeUpdateBacklogCap = codeUpdateBacklogCap;
    mc.specReadBufferCap = specReadBufferCap;
    mc.wowMaxMerge = wowMaxMerge;
    mc.wowScanDepth = wowScanDepth;
    mc.validate();
    return mc;
}

System::System(const SystemConfig &config,
               const workload::WorkloadSpec &workload_spec)
    : cfg(config), spec(workload_spec)
{
    if (spec.cores() != cfg.numCores) {
        fatal("workload '", spec.name, "' provides ", spec.cores(),
              " core apps but the system has ", cfg.numCores, " cores");
    }
    cfg.geometry.validate();

    const bool fab_on = cfg.fabric.enabled();
    const unsigned num_tenants =
        static_cast<unsigned>(cfg.fabric.tenants.size());
    if (fab_on) {
        cfg.fabric.validate(cfg.numCores);
        // Tenants partition the cores into contiguous blocks.
        coreTenant.resize(cfg.numCores);
        for (unsigned i = 0; i < cfg.numCores; ++i)
            coreTenant[i] = i * num_tenants / cfg.numCores;
    }

    // Size the functional stores for the lines this run can actually
    // touch: per core, no more than its footprint and no more than
    // its expected write count (a host-side hint only — results are
    // identical without it).
    std::uint64_t footprint_hint = 0;
    std::uint64_t shared_footprint = 0;
    std::uint64_t shared_writes = 0;
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        const workload::AppProfile &prof =
            workload::findProfile(spec.coreApps[i]);
        const auto writes = static_cast<std::uint64_t>(
            static_cast<double>(cfg.instructionsPerCore) * prof.wpki /
            1000.0);
        if (spec.sharedAddressSpace) {
            // Threads write into one region; together they can touch
            // at most its footprint, and at most their joint writes.
            shared_footprint =
                std::max(shared_footprint, prof.footprintLines);
            shared_writes += writes;
        } else {
            footprint_hint += std::min(prof.footprintLines, writes);
        }
    }
    if (spec.sharedAddressSpace)
        footprint_hint = std::min(shared_footprint, shared_writes);

    ControllerConfig mc_cfg = cfg.controllerConfig();
    mc_cfg.footprintLinesHint = footprint_hint;
    mem = std::make_unique<MainMemory>(mc_cfg, cfg.geometry, eventq);

    // All request sources drive one port; the stack composes
    // outermost-last: [fabric link ->] [cache tier ->] MainMemory.
    MemoryPort *port = mem.get();
    if (cfg.tier.enabled()) {
        cfg.tier.validate();
        tier = std::make_unique<cache::CacheTier>(cfg.tier, eventq,
                                                  *mem);
        port = tier.get();
    }
    if (fab_on) {
        link = std::make_unique<fabric::LinkModel>(cfg.fabric, coreTenant,
                                                   eventq, *port);
        port = link.get();
    }

    // Carve the physical line space into per-core regions for
    // multi-programmed runs; multi-threaded runs share one region.
    // The carving math is identical with and without a fabric, so a
    // tenant's address region is exactly its core slots' regions.
    const std::uint64_t total_lines = cfg.geometry.totalLines();
    std::uint64_t next_base = 0;
    Rng seeder(cfg.seed);

    /** Accumulated address region of one open-loop tenant. */
    struct OpenRegion
    {
        bool seen = false;
        std::uint64_t base = 0;
        std::uint64_t lines = 0;
        unsigned firstCore = 0;
        const workload::AppProfile *prof = nullptr;
    };
    std::vector<OpenRegion> openRegions(num_tenants);

    for (unsigned i = 0; i < cfg.numCores; ++i) {
        const workload::AppProfile &prof =
            workload::findProfile(spec.coreApps[i]);
        std::uint64_t base = 0;
        std::uint64_t region = prof.footprintLines;
        if (!spec.sharedAddressSpace) {
            base = next_base;
            next_base += region;
            if (next_base > total_lines) {
                fatal("per-core footprints exceed the ",
                      total_lines / (1u << 24),
                      " GB memory; shrink the workload");
            }
        }

        const unsigned t = fab_on ? coreTenant[i] : 0;
        if (fab_on &&
            cfg.fabric.tenants[t].arrival != fabric::ArrivalKind::Closed) {
            // Open-loop slot: no generator/core pair; the tenant's
            // stream injects over the union of its slots' regions.
            sources.push_back(nullptr);
            cores.push_back(nullptr);
            OpenRegion &r = openRegions[t];
            if (!r.seen) {
                r.seen = true;
                r.base = base;
                r.firstCore = i;
                r.prof = &prof;
                r.lines = region;
            } else if (!spec.sharedAddressSpace) {
                r.lines += region;
            }
            continue;
        }

        sources.push_back(
            std::make_unique<workload::SyntheticGenerator>(
                prof, mem->backingStore(),
                cfg.seed * 1000003ull + i * 7919ull, base, region));
        CoreConfig core_cfg = cfg.core;
        if (fab_on && cfg.fabric.tenants[t].window > 0)
            core_cfg.maxOutstandingReads = cfg.fabric.tenants[t].window;
        cores.push_back(std::make_unique<CoreModel>(
            i, core_cfg, eventq, *port, *sources.back(),
            cfg.instructionsPerCore));
    }

    if (fab_on) {
        tenantStreams.resize(num_tenants);
        for (unsigned t = 0; t < num_tenants; ++t) {
            const fabric::TenantSpec &ts = cfg.fabric.tenants[t];
            if (ts.arrival == fabric::ArrivalKind::Closed)
                continue;
            const OpenRegion &r = openRegions[t];
            pcmap_assert(r.seen);
            tenantStreams[t] = std::make_unique<fabric::TenantStream>(
                t, ts, eventq, *port, *r.prof, mem->backingStore(),
                Rng::deriveStream(cfg.seed, t), r.base, r.lines,
                r.firstCore);
        }
    }

    port->setRetryCallback([this]() {
        for (auto &c : cores) {
            if (c)
                c->onRetry();
        }
    });
    port->setVerifyCallback([this](ReqId id, unsigned core_id,
                                   bool fault) {
        if (core_id < cores.size() && cores[core_id])
            cores[core_id]->onVerify(id, fault);
    });

    if (cfg.obs.enabled()) {
        obsRun = std::make_unique<obs::RunObserver>(cfg.obs);
        if (obsRun->recorder() != nullptr) {
            mem->setTraceRecorder(obsRun->recorder());
            if (tier)
                tier->setTraceRecorder(obsRun->recorder());
            if (link)
                link->setTraceRecorder(obsRun->recorder());
        }
        if (obs::attrib::AttribCollector *col =
                obsRun->attribCollector()) {
            // Without a fabric every core is tenant 0 (coreTenant is
            // empty and tenantOf falls back to 0).
            col->configureTenants(fab_on ? num_tenants : 1, coreTenant);
            mem->setAttrib(col);
            if (tier)
                tier->setAttrib(col);
            if (link)
                link->setAttrib(col);
        }
    }
}

System::~System() = default;

void
System::sampleEpoch(Tick tick)
{
    obs::TimelineSample s;
    s.tick = tick;
    unsigned busy_banks = 0;
    unsigned total_banks = 0;
    // Same channel order and summation order as run()'s aggregation
    // loop, so the final post-finalize sample restates the aggregate
    // results bit-for-bit (obs_integration_test relies on this).
    for (unsigned ch = 0; ch < mem->channels(); ++ch) {
        const MemoryController &mc = mem->controller(ch);
        const ControllerStats &cs = mc.stats();
        s.readsCompleted += cs.readsCompleted;
        s.writesCompleted += cs.writesCompleted;
        s.rowReads += cs.rowReads;
        s.deferredEccReads += cs.deferredEccReads;
        s.writesEnqueued += cs.writesEnqueued;
        s.wowGroups += cs.wowGroups;
        s.wowMergedWrites += cs.wowMergedWrites;
        s.irlpArea += mc.irlpArea();
        s.irlpWindowTicks += mc.irlpWindowTicks();
        s.irlpMax = std::max(
            s.irlpMax, static_cast<std::uint32_t>(mc.irlpMaxSeen()));
        s.readQueueDepth += mc.readQueueDepth();
        s.writeQueueDepth += mc.writeQueueDepth();
        busy_banks += mc.busyBankCount(tick);
        total_banks += mc.totalBankCount();
    }
    if (total_banks > 0) {
        s.bankBusyFraction = static_cast<double>(busy_banks) /
                             static_cast<double>(total_banks);
    }
    obsRun->timeline().push(s);
}

void
System::scheduleEpochSample(Tick at)
{
    epochEvent = eventq.schedule(at, [this, at]() {
        sampleEpoch(at);
        scheduleEpochSample(at + cfg.obs.epochTicks);
    });
}

SystemResults
System::run()
{
    for (auto &c : cores) {
        if (c)
            c->start();
    }
    for (auto &t : tenantStreams) {
        if (t)
            t->start();
    }

    const bool epochs = obsRun && cfg.obs.epochTicks > 0;
    if (epochs) {
        // Sample at t = epoch, 2*epoch, ...  The sampler always keeps
        // exactly one pending event alive, so run until it is the only
        // thing left and cancel it: cancelled events never advance
        // time, which keeps now() — and every result — identical to a
        // run without observability.
        scheduleEpochSample(cfg.obs.epochTicks);
        eventq.runUntil([this]() { return eventq.pending() <= 1; });
        eventq.cancel(epochEvent);
        epochEvent = EventHandle();
    } else {
        eventq.run();
    }

    for (const auto &c : cores) {
        if (c && !c->finished()) {
            pcmap_panic("event queue drained but core ", c->id(),
                        " retired only ", c->stats().instRetired,
                        " instructions (simulator deadlock)");
        }
    }

    const Tick end = eventq.now();
    mem->finalize(end);
    if (obsRun != nullptr) {
        // Drop ledgers still open (parked dirty victims, in-flight
        // requests at the instruction target): every sample must have
        // a matching completion.
        if (obs::attrib::AttribCollector *col = obsRun->attribCollector())
            col->finalize();
    }

    // Final exact sample: taken after finalize() closed the
    // time-weighted windows, so the last timeline row restates the
    // aggregate results below bit-for-bit.
    if (epochs)
        sampleEpoch(end);

    SystemResults res;
    res.workload = spec.name;
    res.mode = cfg.mode;
    res.simTicks = end;

    // --- Cores ---
    std::uint64_t total_insts = 0;
    for (const auto &c : cores) {
        if (!c)
            continue; // open-loop tenant slot
        res.coreIpc.push_back(c->ipc());
        res.ipcSum += c->ipc();
        const CoreStats &cs = c->stats();
        total_insts += cs.instRetired;
        res.specReads += cs.specReadsSeen;
        res.consumedBeforeVerify += cs.consumedBeforeVerify;
        res.rollbacks += cs.rollbacks;
    }

    // --- Controllers ---
    double lat_weighted = 0.0;
    double irlp_area = 0.0;
    double irlp_span = 0.0;
    std::uint64_t delayed = 0;
    std::uint64_t essential_sum = 0;
    std::uint64_t essential_writes = 0;
    std::array<std::uint64_t, 9> hist{};
    for (unsigned ch = 0; ch < mem->channels(); ++ch) {
        const ControllerStats &s = mem->controller(ch).stats();
        const MemoryController &mc = mem->controller(ch);
        res.readsCompleted += s.readsCompleted;
        res.writesCompleted += s.writesCompleted;
        res.rowReads += s.rowReads;
        res.deferredEccReads += s.deferredEccReads;
        res.twoStepWrites += s.twoStepWrites;
        res.wowGroups += s.wowGroups;
        res.wowMergedWrites += s.wowMergedWrites;
        res.writeRoundsIssued += s.writeRoundsIssued;
        res.writeRoundPauses += s.writeRoundPauses;
        delayed += s.readsDelayedByWrite;
        lat_weighted += s.readLatencySum;
        res.readsIssuedDuringDrain += s.readsIssuedDuringDrain;
        res.avgReadQueueWaitNs += s.readQueueWaitSum;
        essential_sum += s.essentialWordsSum;
        for (unsigned i = 0; i <= 8; ++i) {
            hist[i] += s.essentialHist[i];
            essential_writes += s.essentialHist[i];
        }
        irlp_area += mc.irlpArea();
        irlp_span += mc.irlpWindowTicks();
        const EnergyBreakdown &eb =
            mem->controller(ch).energy().breakdown();
        res.energyUj += eb.totalUj();
        res.energyArrayReadUj += eb.arrayReadPj * 1e-6;
        res.energySetUj += eb.setPj * 1e-6;
        res.energyResetUj += eb.resetPj * 1e-6;
        res.bitsSet += mem->controller(ch).energy().bitsSet();
        res.bitsReset += mem->controller(ch).energy().bitsReset();
        res.irlpMax = std::max(
            res.irlpMax, static_cast<double>(mc.irlpMaxSeen()));
    }

    if (res.readsCompleted > 0) {
        res.avgReadLatencyNs = ticksToNs(static_cast<Tick>(
            lat_weighted / static_cast<double>(res.readsCompleted)));
        res.avgReadQueueWaitNs = ticksToNs(static_cast<Tick>(
            res.avgReadQueueWaitNs /
            static_cast<double>(res.readsCompleted)));
        res.pctReadsDelayedByWrite =
            100.0 * static_cast<double>(delayed) /
            static_cast<double>(res.readsCompleted);
    }
    if (irlp_span > 0.0) {
        res.irlpMean = irlp_area / irlp_span;
        // writes per second of write-service window time
        res.writeThroughput = static_cast<double>(res.writesCompleted) /
                              (irlp_span * 1e-12);
    }
    if (essential_writes > 0) {
        res.avgEssentialWords =
            static_cast<double>(essential_sum) /
            static_cast<double>(essential_writes);
        for (unsigned i = 0; i <= 8; ++i) {
            res.essentialPct[i] = 100.0 * static_cast<double>(hist[i]) /
                                  static_cast<double>(essential_writes);
        }
    }
    {
        // Aggregate per-chip wear slot-wise across channels.
        WearTracker combined;
        for (unsigned ch = 0; ch < mem->channels(); ++ch) {
            const auto &per_chip =
                mem->controller(ch).wear().perChip();
            for (unsigned c = 0; c < kChipsPerRank; ++c) {
                if (per_chip[c] > 0) {
                    combined.recordChipWrite(
                        c, static_cast<unsigned>(per_chip[c]));
                }
            }
        }
        res.wearChipImbalance = combined.chipImbalance();
        res.wearChipCv = combined.chipCv();
    }
    if (total_insts > 0) {
        res.rpki = 1000.0 * static_cast<double>(res.readsCompleted) /
                   static_cast<double>(total_insts);
        res.wpki = 1000.0 * static_cast<double>(res.writesCompleted) /
                   static_cast<double>(total_insts);
    }
    // --- DRAM cache tier (all zero when tier=none) ---
    if (tier) {
        const cache::TierCounters &tc = tier->counters();
        res.cacheHits = tc.hits();
        res.cacheMisses = tc.misses();
        res.cacheFills = tc.fills;
        res.cacheWritebacks = tc.writebacks;
        res.cacheDirtyWordsWrittenBack = tc.dirtyWordsWrittenBack;
        res.cacheHitRate = tc.hitRate();
    }

    res.instRetired = total_insts;
    res.hostEventsExecuted = eventq.counters().eventsExecuted;
    res.hostScheduleCalls = eventq.counters().scheduleCalls;
    return res;
}

SystemResults
runWorkload(const SystemConfig &cfg, const std::string &workload_name)
{
    System sys(cfg, workload::makeWorkload(workload_name, cfg.numCores));
    return sys.run();
}

namespace {

void
line(std::ostream &os, const char *name, double value, const char *unit,
     const char *desc)
{
    os << "  " << std::left << std::setw(28) << name << std::right
       << std::setw(14) << std::setprecision(6) << value << " " << unit
       << "  # " << desc << "\n";
}

} // namespace

void
dumpResults(const SystemResults &r, std::ostream &os)
{
    os << "=== " << r.workload << " on " << systemModeName(r.mode)
       << " ===\n";
    line(os, "simulated.time", static_cast<double>(r.simTicks) / 1e9,
         "ms", "wall time inside the simulation");
    line(os, "ipc.sum", r.ipcSum, "", "system throughput (sum of IPCs)");
    for (std::size_t i = 0; i < r.coreIpc.size(); ++i) {
        line(os, ("ipc.core" + std::to_string(i)).c_str(), r.coreIpc[i],
             "", "per-core IPC");
    }
    line(os, "reads.completed", static_cast<double>(r.readsCompleted),
         "", "PCM reads served");
    line(os, "writes.completed", static_cast<double>(r.writesCompleted),
         "", "PCM write-backs committed");
    line(os, "reads.latency", r.avgReadLatencyNs, "ns",
         "mean effective read latency");
    line(os, "reads.queueWait", r.avgReadQueueWaitNs, "ns",
         "mean time from arrival to array start");
    line(os, "reads.delayedByWrite", r.pctReadsDelayedByWrite, "%",
         "reads held up by write service (Fig. 1)");
    line(os, "writes.throughput", r.writeThroughput / 1e6, "M/s",
         "writes per second of write-service time");
    line(os, "irlp.mean", r.irlpMean, "",
         "chips busy during writes (Fig. 8)");
    line(os, "irlp.max", r.irlpMax, "", "peak concurrent busy chips");
    line(os, "writes.essentialWords", r.avgEssentialWords, "",
         "mean dirty words per write-back (Fig. 2)");
    os << "  essential-word histogram   ";
    for (unsigned i = 0; i <= 8; ++i) {
        os << i << ":" << std::setprecision(3) << r.essentialPct[i]
           << "% ";
    }
    os << "\n";
    line(os, "row.reads", static_cast<double>(r.rowReads), "",
         "reads served by PCC reconstruction");
    line(os, "row.eccDeferred", static_cast<double>(r.deferredEccReads),
         "", "reads with the SECDED check deferred");
    line(os, "row.twoStepWrites", static_cast<double>(r.twoStepWrites),
         "", "one-word writes split for RoW");
    line(os, "wow.groups", static_cast<double>(r.wowGroups), "",
         "consolidated write groups");
    line(os, "wow.mergedWrites", static_cast<double>(r.wowMergedWrites),
         "", "writes that joined a group");
    if (r.cacheHits + r.cacheMisses > 0) {
        // DRAM cache tier only; absent for tier=none so the default
        // dump stays byte-identical.
        line(os, "cache.hitRate", r.cacheHitRate, "",
             "tier hit fraction over all accesses");
        line(os, "cache.hits", static_cast<double>(r.cacheHits), "",
             "tier hits (read + write)");
        line(os, "cache.misses", static_cast<double>(r.cacheMisses), "",
             "tier misses (read + write)");
        line(os, "cache.fills", static_cast<double>(r.cacheFills), "",
             "lines fetched from PCM and installed");
        line(os, "cache.writebacks",
             static_cast<double>(r.cacheWritebacks), "",
             "dirty victims handed to the PCM side");
        line(os, "cache.dirtyWordsWB",
             static_cast<double>(r.cacheDirtyWordsWrittenBack), "",
             "dirty words carried by those victims");
    }
    if (r.writeRoundsIssued > 0) {
        // Multi-round (MLC+) organizations only; absent for org=slc so
        // the default dump stays byte-identical.
        line(os, "mlc.writeRounds",
             static_cast<double>(r.writeRoundsIssued), "",
             "programming rounds issued");
        line(os, "mlc.roundPauses",
             static_cast<double>(r.writeRoundPauses), "",
             "round-boundary pauses for reads");
    }
    line(os, "spec.reads", static_cast<double>(r.specReads), "",
         "speculative deliveries");
    line(os, "spec.consumedBeforeVerify",
         static_cast<double>(r.consumedBeforeVerify), "",
         "consumed before the deferred check");
    line(os, "spec.rollbacks", static_cast<double>(r.rollbacks), "",
         "CPU rollbacks (Table IV)");
    line(os, "energy.total", r.energyUj, "uJ",
         "array + pulse + buffer + bus energy");
    line(os, "energy.set", r.energySetUj, "uJ", "SET pulses");
    line(os, "energy.reset", r.energyResetUj, "uJ", "RESET pulses");
    line(os, "wear.chipImbalance", r.wearChipImbalance, "",
         "max/mean per-chip writes (1.0 = even)");
    line(os, "traffic.rpki", r.rpki, "", "PCM reads per kilo-inst");
    line(os, "traffic.wpki", r.wpki, "", "PCM writes per kilo-inst");
}

} // namespace pcmap
