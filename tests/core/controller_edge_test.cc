/**
 * @file
 * Edge-case and resource-limit tests for the controller: the
 * speculative-read buffer, the code-update backlog, status-poll
 * accounting, forwarding during drains, and mixed-stress soaks for
 * every mode.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/controller.h"
#include "sim/rng.h"

namespace pcmap {
namespace {

class ControllerEdgeTest : public ::testing::Test
{
  protected:
    void
    build(SystemMode mode,
          const std::function<void(ControllerConfig &)> &tweak = {})
    {
        ControllerConfig cfg = ControllerConfig::forMode(mode);
        if (tweak)
            tweak(cfg);
        mapper = std::make_unique<AddressMapper>(MemGeometry{});
        mc = std::make_unique<MemoryController>("mc0", cfg, eq, store,
                                                *mapper, 0);
        mc->setVerifyCallback(
            [this](ReqId, unsigned, bool) { ++verifies; });
    }

    std::uint64_t
    addrFor(unsigned bank, std::uint64_t row, unsigned col = 0) const
    {
        DecodedAddr d;
        d.bank = bank;
        d.row = row;
        d.column = col;
        return mapper->encode(d);
    }

    bool
    read(std::uint64_t addr)
    {
        MemRequest req;
        req.id = nextId++;
        req.type = ReqType::Read;
        req.addr = addr;
        return mc->enqueueRead(req, [this](const ReadResponse &r) {
            responses.push_back(r);
        });
    }

    bool
    write(std::uint64_t addr, WordMask mask)
    {
        const std::uint64_t line = addr / kLineBytes;
        MemRequest req;
        req.id = nextId++;
        req.type = ReqType::Write;
        req.addr = addr;
        req.data = store.read(line).data;
        for (unsigned i = 0; i < kWordsPerLine; ++i) {
            if (mask & (1u << i))
                req.data.w[i] = rng.next() | 1ull;
        }
        return mc->enqueueWrite(req);
    }

    EventQueue eq;
    BackingStore store;
    std::unique_ptr<AddressMapper> mapper;
    std::unique_ptr<MemoryController> mc;
    std::vector<ReadResponse> responses;
    int verifies = 0;
    ReqId nextId = 1;
    Rng rng{7};
};

TEST_F(ControllerEdgeTest, SpecBufferCapLimitsOutstandingVerifies)
{
    // With a 1-entry speculative buffer, at most one unverified read
    // can be outstanding; further reads wait for chips instead.
    build(SystemMode::RWoW_NR, [](ControllerConfig &c) {
        c.specReadBufferCap = 1;
        c.writeQueueCap = 4;
    });
    for (unsigned i = 0; i < 6; ++i)
        read(addrFor(0, 10 + i));
    write(addrFor(0, 1, 0), 0b1);
    write(addrFor(0, 1, 1), 0b1);
    write(addrFor(0, 1, 2), 0b1);
    eq.run();
    EXPECT_EQ(responses.size(), 6u);
    // Every speculative delivery got verified in the end.
    EXPECT_EQ(static_cast<std::uint64_t>(verifies),
              mc->stats().verifiesCompleted);
    EXPECT_TRUE(mc->idle());
}

TEST_F(ControllerEdgeTest, StatusPollsChargedForFineGrainedService)
{
    build(SystemMode::RWoW_RDE);
    write(addrFor(0, 1), 0b11);
    eq.run();
    EXPECT_GE(mc->stats().statusPolls, 1u);
}

TEST_F(ControllerEdgeTest, NoStatusPollsInBaseline)
{
    build(SystemMode::Baseline);
    write(addrFor(0, 1), 0b11);
    read(addrFor(1, 1));
    eq.run();
    EXPECT_EQ(mc->stats().statusPolls, 0u);
}

TEST_F(ControllerEdgeTest, ForwardingWorksDuringDrain)
{
    build(SystemMode::Baseline, [](ControllerConfig &c) {
        c.writeQueueCap = 8;
        c.drainHighWatermark = 0.5;
    });
    // Trigger a drain, then read a line still buffered in the queue.
    for (unsigned i = 0; i < 6; ++i)
        write(addrFor(0, 1, i), 0b1);
    const std::uint64_t hot = addrFor(0, 1, 5);
    read(hot);
    eq.run(eq.now() + 50 * kNanosecond);
    EXPECT_GE(mc->stats().readsForwardedFromWq, 1u);
    eq.run();
}

TEST_F(ControllerEdgeTest, BacklogCapThrottlesWrites)
{
    // A tiny code-update backlog forces write service to wait for the
    // code chips; everything still completes.
    build(SystemMode::WoW_NR, [](ControllerConfig &c) {
        c.codeUpdateBacklogCap = 2;
        c.writeQueueCap = 64;
        c.drainHighWatermark = 0.9;
    });
    for (unsigned i = 0; i < 16; ++i)
        write(addrFor(0, 1, i), 0b1 << (i % 8));
    eq.run();
    EXPECT_EQ(mc->stats().writesCompleted, 16u);
    EXPECT_TRUE(mc->idle());
}

TEST_F(ControllerEdgeTest, ZeroEssentialWritesNeverTouchChips)
{
    build(SystemMode::RWoW_RDE);
    // Pre-populate, then write back identical contents repeatedly.
    CacheLine l;
    l.w[3] = 42;
    store.writeLine(addrFor(2, 5) / kLineBytes, l);
    for (int i = 0; i < 5; ++i) {
        MemRequest req;
        req.id = nextId++;
        req.type = ReqType::Write;
        req.addr = addrFor(2, 5);
        req.data = l;
        mc->enqueueWrite(req);
        eq.run();
    }
    EXPECT_EQ(mc->stats().writesSilent + mc->stats().writesCoalesced,
              5u);
    EXPECT_EQ(mc->irlpWindowTicks(), 0.0);
}

TEST_F(ControllerEdgeTest, PresetMakesBufferedWriteFast)
{
    build(SystemMode::Baseline, [](ControllerConfig &c) {
        c.enablePreset = true;
        c.drainHighWatermark = 0.9;
    });
    // Park reads so the write stays buffered long enough to pre-SET.
    read(addrFor(7, 1));
    read(addrFor(7, 2));
    read(addrFor(7, 3));
    write(addrFor(0, 1), 0b111);
    eq.run();
    EXPECT_EQ(mc->stats().writesCompleted, 1u);
    if (mc->stats().presetsIssued > 0) {
        EXPECT_EQ(mc->stats().presetWrites, 1u);
    }
    EXPECT_TRUE(mc->idle());
}

TEST_F(ControllerEdgeTest, PresetDroppedWhenWriteOutrunsIt)
{
    build(SystemMode::Baseline, [](ControllerConfig &c) {
        c.enablePreset = true;
    });
    // No reads: the write issues immediately, before any pre-SET.
    write(addrFor(0, 1), 0b1);
    eq.run();
    EXPECT_EQ(mc->stats().writesCompleted, 1u);
    EXPECT_EQ(mc->stats().presetWrites, 0u);
    EXPECT_EQ(mc->stats().presetsIssued, 0u);
    EXPECT_TRUE(mc->idle());
}

TEST_F(ControllerEdgeTest, PresetWritesCommitCorrectData)
{
    build(SystemMode::Baseline, [](ControllerConfig &c) {
        c.enablePreset = true;
        c.drainHighWatermark = 0.9;
    });
    read(addrFor(7, 1));
    read(addrFor(7, 2));
    const std::uint64_t addr = addrFor(0, 1);
    write(addr, 0b1010);
    eq.run();
    responses.clear();
    read(addr);
    eq.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].data, store.read(addr / kLineBytes).data);
}

/** Random mixed-stress soak across every mode: nothing deadlocks,
 *  everything completes, functional state stays exact. */
class ControllerSoak : public ::testing::TestWithParam<SystemMode>
{
};

TEST_P(ControllerSoak, RandomStressCompletesConsistently)
{
    EventQueue eq;
    BackingStore store;
    AddressMapper mapper{MemGeometry{}};
    ControllerConfig cfg = ControllerConfig::forMode(GetParam());
    cfg.writeQueueCap = 16;
    MemoryController mc("mc0", cfg, eq, store, mapper, 0);
    mc.setVerifyCallback([](ReqId, unsigned, bool) {});

    Rng rng(101);
    ReqId next_id = 1;
    std::uint64_t accepted_reads = 0;
    std::uint64_t completed_reads = 0;
    std::uint64_t accepted_writes = 0;

    for (int burst = 0; burst < 40; ++burst) {
        const int ops = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < ops; ++i) {
            DecodedAddr d;
            d.bank = static_cast<unsigned>(rng.below(8));
            d.row = 1 + rng.below(3);
            d.column = static_cast<unsigned>(rng.below(16));
            const std::uint64_t addr = mapper.encode(d);
            if (rng.chance(0.5)) {
                MemRequest req;
                req.id = next_id++;
                req.addr = addr;
                if (mc.enqueueRead(req,
                                   [&completed_reads](
                                       const ReadResponse &) {
                                       ++completed_reads;
                                   })) {
                    ++accepted_reads;
                }
            } else {
                MemRequest req;
                req.id = next_id++;
                req.type = ReqType::Write;
                req.addr = addr;
                req.data = store.read(addr / kLineBytes).data;
                const auto mask =
                    static_cast<WordMask>(rng.below(256));
                for (unsigned w = 0; w < kWordsPerLine; ++w) {
                    if (mask & (1u << w))
                        req.data.w[w] = rng.next();
                }
                if (mc.enqueueWrite(req))
                    ++accepted_writes;
            }
        }
        eq.run(eq.now() + rng.below(2000) * kNanosecond / 4);
    }
    eq.run();
    EXPECT_EQ(completed_reads, accepted_reads);
    EXPECT_GT(accepted_writes, 0u);
    EXPECT_TRUE(mc.idle());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ControllerSoak, ::testing::ValuesIn(kAllModes),
    [](const ::testing::TestParamInfo<SystemMode> &info) {
        std::string name = systemModeName(info.param);
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace pcmap
