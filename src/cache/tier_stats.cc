#include "cache/tier_stats.h"

#include <ostream>

namespace pcmap::cache {

namespace {

/** Summary -> Percentiles values, ticks exported as ns. */
stats::Percentiles::Values
percentileValuesNs(const obs::LogHistogram &h)
{
    const obs::LogHistogram::Summary s = h.summary();
    stats::Percentiles::Values v;
    v.p50 = s.p50 * 1e-3;
    v.p90 = s.p90 * 1e-3;
    v.p99 = s.p99 * 1e-3;
    v.p999 = s.p999 * 1e-3;
    v.max = s.max * 1e-3;
    v.mean = s.mean * 1e-3;
    v.samples = static_cast<double>(s.samples);
    return v;
}

/** Summary -> Percentiles values in natural units (batch sizes). */
stats::Percentiles::Values
percentileValues(const obs::LogHistogram &h)
{
    const obs::LogHistogram::Summary s = h.summary();
    stats::Percentiles::Values v;
    v.p50 = static_cast<double>(s.p50);
    v.p90 = static_cast<double>(s.p90);
    v.p99 = static_cast<double>(s.p99);
    v.p999 = static_cast<double>(s.p999);
    v.max = static_cast<double>(s.max);
    v.mean = s.mean;
    v.samples = static_cast<double>(s.samples);
    return v;
}

} // namespace

CacheStatExport::CacheStatExport(const CacheTier &tier_) : tier(tier_)
{
}

void
CacheStatExport::refresh()
{
    const TierCounters &c = tier.counters();
    hitRate.set(c.hitRate());
    readHits.set(static_cast<double>(c.readHits));
    readMisses.set(static_cast<double>(c.readMisses));
    writeHits.set(static_cast<double>(c.writeHits));
    writeMisses.set(static_cast<double>(c.writeMisses));
    fills.set(static_cast<double>(c.fills));
    writebacks.set(static_cast<double>(c.writebacks));
    dirtyWordsWrittenBack.set(
        static_cast<double>(c.dirtyWordsWrittenBack));
    mshrMerges.set(static_cast<double>(c.mshrMerges));
    mshrRejects.set(static_cast<double>(c.mshrRejects));
    wbRejects.set(static_cast<double>(c.wbRejects));
    missLatency.set(percentileValuesNs(c.missLatency));
    writebackBatch.set(percentileValues(c.writebackBatch));
}

void
CacheStatExport::dump(std::ostream &os)
{
    refresh();
    rootGroup.dump(os);
}

} // namespace pcmap::cache
