#include "cache/tier.h"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "obs/attrib.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace pcmap::cache {

namespace {

/** Synthesized write-back ids live far above any source-issued id. */
constexpr ReqId kWbIdBase = 1ull << 62;

constexpr WordMask kAllWords =
    static_cast<WordMask>((1u << kWordsPerLine) - 1);

/** Parse "<digits>[K|M|G]" into bytes; fatal()s on malformed input. */
std::uint64_t
parseSize(const std::string &tok)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str())
        fatal("tier=: '", tok, "' is not a size");
    std::uint64_t bytes = v;
    switch (std::toupper(static_cast<unsigned char>(*end))) {
    case '\0':
        break;
    case 'K':
        bytes <<= 10;
        ++end;
        break;
    case 'M':
        bytes <<= 20;
        ++end;
        break;
    case 'G':
        bytes <<= 30;
        ++end;
        break;
    default:
        fatal("tier=: bad size suffix in '", tok,
              "' (use K, M or G)");
    }
    if (*end != '\0')
        fatal("tier=: trailing characters in size '", tok, "'");
    if (bytes == 0)
        fatal("tier=: size must be positive");
    return bytes;
}

} // namespace

void
TierConfig::validate() const
{
    if (!enabled())
        fatal("TierConfig::validate on a disabled tier");
    if (mshrCap == 0)
        fatal("tier: mshrCap must be at least 1");
    if (writebackBatch == 0)
        fatal("tier: writebackBatch must be at least 1");
    if (wbBufferCap < writebackBatch)
        fatal("tier: wbBufferCap (", wbBufferCap,
              ") must be >= writebackBatch (", writebackBatch, ")");
    // Geometry (size multiple of ways * line, power-of-two sets) is
    // checked by the array's own CacheConfig::validate at build time.
}

TierConfig
tierConfigFromString(const std::string &text)
{
    TierConfig cfg;
    if (text == "none")
        return cfg;
    // dram:<size>:<ways>:<repl>
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = text.find(':', start);
        if (colon == std::string::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
    if (parts.empty() || parts[0] != "dram") {
        fatal("tier=: '", text,
              "' (expected none or dram:<size>:<ways>:<repl>, "
              "e.g. dram:256M:8:lru)");
    }
    if (parts.size() != 4)
        fatal("tier=: '", text,
              "' needs exactly dram:<size>:<ways>:<repl>");
    cfg.sizeBytes = parseSize(parts[1]);
    char *end = nullptr;
    const unsigned long long ways =
        std::strtoull(parts[2].c_str(), &end, 10);
    if (end == parts[2].c_str() || *end != '\0' || ways == 0)
        fatal("tier=: '", parts[2], "' is not a way count");
    cfg.ways = static_cast<unsigned>(ways);
    cfg.repl = replPolicyFromName(parts[3]);
    cfg.validate();
    return cfg;
}

std::string
tierConfigToString(const TierConfig &cfg)
{
    if (!cfg.enabled())
        return "none";
    return "dram:" + std::to_string(cfg.sizeBytes) + ":" +
           std::to_string(cfg.ways) + ":" + replPolicyName(cfg.repl);
}

CacheTier::CacheTier(const TierConfig &config, EventQueue &eq,
                     MemoryPort &downstream)
    : ForwardingPort(downstream), cfg(config), eventq(eq),
      array(CacheConfig{cfg.sizeBytes, cfg.ways, /*writeBack=*/true,
                        cfg.repl})
{
    cfg.validate();
    mshrs.reserve(cfg.mshrCap);

    // The tier owns the downstream seams: queue-space notifications
    // first finish stalled drains and unissued fetches, and deferred
    // verify outcomes fan out to every waiter merged onto the
    // speculative fill before flowing upward.
    down.setRetryCallback([this]() { onDownstreamRetry(); });
    down.setVerifyCallback(
        [this](ReqId id, unsigned core_id, bool fault) {
            const auto it = speculativeFills.find(id);
            if (it == speculativeFills.end()) {
                if (upstreamVerify)
                    upstreamVerify(id, core_id, fault);
                return;
            }
            const auto waiters = std::move(it->second);
            speculativeFills.erase(it);
            if (upstreamVerify) {
                for (const auto &[wid, wcore] : waiters)
                    upstreamVerify(wid, wcore, fault);
            }
        });
}

std::uint64_t
CacheTier::lineOf(std::uint64_t addr) const
{
    return addr / kLineBytes;
}

CacheTier::Mshr *
CacheTier::findMshr(std::uint64_t line)
{
    for (Mshr &m : mshrs) {
        if (m.line == line)
            return &m;
    }
    return nullptr;
}

const CacheTier::PendingWriteback *
CacheTier::findWb(std::uint64_t line) const
{
    for (const PendingWriteback &pw : wbBuffer) {
        if (pw.ev.lineAddr == line)
            return &pw;
    }
    return nullptr;
}

void
CacheTier::scheduleHit(const Waiter &w, const CacheLine &data)
{
    const Tick when = eventq.now() + cfg.hitTicks;
    eventq.schedule(
        when, [this, id = w.req.id, addr = w.req.addr,
               core = w.req.coreId, cb = w.cb, data, when,
               led = w.req.ledger]() {
            if (led != nullptr) {
                led->account(obs::attrib::Phase::CacheLookup, when);
                attrib->close(led, when);
            }
            ReadResponse resp;
            resp.id = id;
            resp.addr = addr;
            resp.coreId = core;
            resp.completionTick = when;
            resp.data = data;
            if (cb)
                cb(resp);
        });
}

bool
CacheTier::enqueueRead(const MemRequest &req, ReadCallback cb)
{
    const Tick now = eventq.now();
    const std::uint64_t line = lineOf(req.addr);

    // A parked dirty victim is newer than both the array and PCM, so
    // it must service reads until its write-back lands.
    if (const PendingWriteback *pw = findWb(line)) {
        ++tierStats.readHits;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheHit, now,
                        cfg.hitTicks, req.id, line);
        Waiter w{req, std::move(cb), now};
        if (attrib != nullptr)
            attrib->ensure(w.req, now, obs::attrib::AttribOp::Read);
        scheduleHit(w, pw->ev.data);
        return true;
    }

    if (array.peek(line) != nullptr) {
        array.access(line, false); // recency touch + array hit count
        ++tierStats.readHits;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheHit, now,
                        cfg.hitTicks, req.id, line);
        Waiter w{req, std::move(cb), now};
        if (attrib != nullptr)
            attrib->ensure(w.req, now, obs::attrib::AttribOp::Read);
        scheduleHit(w, *array.peek(line));
        return true;
    }

    if (Mshr *m = findMshr(line)) {
        array.access(line, false);
        ++tierStats.readMisses;
        ++tierStats.mshrMerges;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheMiss, now, 0,
                        req.id, line, /*merged=*/1);
        Waiter w{req, std::move(cb), now};
        if (attrib != nullptr)
            attrib->ensure(w.req, now, obs::attrib::AttribOp::Read);
        m->waiters.push_back(std::move(w));
        return true;
    }

    if (mshrs.size() >= cfg.mshrCap) {
        ++tierStats.mshrRejects;
        upstreamBlocked = true;
        return false;
    }
    // Reserve write-back headroom: this miss's eventual fill may
    // evict a dirty line, and a fill cannot be refused.
    if (wbBuffer.size() >= cfg.wbBufferCap) {
        ++tierStats.wbRejects;
        upstreamBlocked = true;
        drainWritebacks();
        return false;
    }

    array.access(line, false);
    ++tierStats.readMisses;
    PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheMiss, now, 0, req.id,
                    line, /*merged=*/0);
    Waiter w{req, std::move(cb), now};
    if (attrib != nullptr)
        attrib->ensure(w.req, now, obs::attrib::AttribOp::Read);
    mshrs.push_back(Mshr{line, false, {std::move(w)}});
    issueFetch(mshrs.back()); // a refusal retries on downstream wake
    return true;
}

bool
CacheTier::enqueueWrite(const MemRequest &req)
{
    const Tick now = eventq.now();
    const std::uint64_t line = lineOf(req.addr);

    // Overwrite a parked victim in place: the line is logically still
    // ours until its write-back lands.
    if (const PendingWriteback *cpw = findWb(line)) {
        auto *pw = const_cast<PendingWriteback *>(cpw);
        ++tierStats.writeHits;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheHit, now, 0,
                        req.id, line);
        pw->ev.dirtyWords |= pw->ev.data.diffMask(req.data);
        pw->ev.data = req.data;
        pw->coreId = req.coreId;
        if (attrib != nullptr)
            attrib->discard(req.ledger); // absorbed; never completes
        return true;
    }

    if (const CacheLine *cur = array.peek(line)) {
        const WordMask mask = cur->diffMask(req.data);
        array.access(line, true, mask, &req.data);
        ++tierStats.writeHits;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheHit, now, 0,
                        req.id, line);
        if (mask != 0)
            lastWriter[line] = req.coreId;
        if (attrib != nullptr)
            attrib->discard(req.ledger); // absorbed; never completes
        return true;
    }

    if (wbBuffer.size() >= cfg.wbBufferCap) {
        ++tierStats.wbRejects;
        upstreamBlocked = true;
        drainWritebacks();
        return false;
    }

    // Write-allocate without a fetch: the payload is the full line,
    // so install it directly, conservatively all-dirty.  The PCM
    // controller still discovers the essential words by diffing the
    // payload against the stored content at commit time.
    array.access(line, true); // counts the array miss
    ++tierStats.writeMisses;
    PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheMiss, now, 0, req.id,
                    line, /*merged=*/0);
    lastWriter[line] = req.coreId;
    if (attrib != nullptr)
        attrib->discard(req.ledger); // absorbed; never completes
    install(line, req.data, kAllWords, &req.data);
    return true;
}

void
CacheTier::setRetryCallback(RetryCallback cb)
{
    // Not forwarded: the tier registered its own downstream handler,
    // and upstream back-pressure is the tier's (MSHR/WB) occupancy.
    upstreamRetry = std::move(cb);
}

void
CacheTier::setVerifyCallback(VerifyCallback cb)
{
    // The downstream wrapper registered at construction fans the
    // outcome out to merged waiters before calling this.
    upstreamVerify = std::move(cb);
}

bool
CacheTier::issueFetch(Mshr &m)
{
    // The fetch is the first waiter's request verbatim, so the PCM
    // side attributes the access — and any deferred verify — to the
    // core that missed first.
    const MemRequest &req = m.waiters.front().req;
    m.issued = down.enqueueRead(
        req, [this](const ReadResponse &resp) { onFillResponse(resp); });
    if (m.issued) {
        // The span the fetch sat unissued (MSHR allocated, PCM queue
        // full) is MSHR wait; downstream phases start here.
        if (obs::attrib::PhaseLedger *led = req.ledger)
            led->account(obs::attrib::Phase::MshrWait, eventq.now());
    }
    return m.issued;
}

void
CacheTier::onFillResponse(const ReadResponse &resp)
{
    const std::uint64_t line = lineOf(resp.addr);
    std::size_t idx = mshrs.size();
    for (std::size_t i = 0; i < mshrs.size(); ++i) {
        if (mshrs[i].line == line) {
            idx = i;
            break;
        }
    }
    pcmap_assert(idx < mshrs.size());
    std::vector<Waiter> waiters = std::move(mshrs[idx].waiters);
    mshrs.erase(mshrs.begin() +
                static_cast<std::ptrdiff_t>(idx));
    ++tierStats.fills;
    PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheFill,
                    resp.completionTick, 0, resp.id, line,
                    waiters.size());

    // The freshest copy wins: a write that raced the fetch left newer
    // content in the array or the write-back buffer, in which case the
    // fetched line is stale and must not be installed over it.
    CacheLine data = resp.data;
    if (const PendingWriteback *pw = findWb(line)) {
        data = pw->ev.data;
    } else if (const CacheLine *cur = array.peek(line)) {
        data = *cur;
    } else {
        install(line, resp.data, 0, nullptr);
    }

    if (resp.speculative) {
        auto &ids = speculativeFills[resp.id];
        ids.reserve(waiters.size());
        for (const Waiter &w : waiters)
            ids.emplace_back(w.req.id, w.req.coreId);
    }

    // Critical-word bypass: waiters get the data at the fill tick;
    // the array install happens in parallel.
    for (const Waiter &w : waiters) {
        tierStats.missLatency.sample(resp.completionTick - w.arrival);
        if (obs::attrib::PhaseLedger *led = w.req.ledger) {
            // Merged waiters rode the primary's fetch: their whole
            // wait was MSHR time.  The primary's ledger went
            // downstream and is already closed — both calls no-op.
            led->account(obs::attrib::Phase::MshrWait,
                         resp.completionTick);
            attrib->close(led, resp.completionTick);
        }
        ReadResponse out;
        out.id = w.req.id;
        out.addr = w.req.addr;
        out.coreId = w.req.coreId;
        out.completionTick = resp.completionTick;
        out.data = data;
        out.speculative = resp.speculative;
        if (w.cb)
            w.cb(out);
    }
    notifyUpstream(); // an MSHR slot freed
}

void
CacheTier::install(std::uint64_t line, const CacheLine &data,
                   WordMask store_mask, const CacheLine *store_data)
{
    std::optional<Eviction> ev =
        array.fill(line, data, store_mask, store_data);
    if (!ev.has_value())
        return;
    unsigned core = 0;
    if (const auto it = lastWriter.find(ev->lineAddr);
        it != lastWriter.end()) {
        core = it->second;
        lastWriter.erase(it);
    }
    obs::attrib::PhaseLedger *led = nullptr;
    if (attrib != nullptr) {
        led = attrib->open(obs::attrib::AttribOp::Writeback, core, 0,
                           eventq.now());
    }
    wbBuffer.push_back(PendingWriteback{*ev, core, led});
    if (wbBuffer.size() >= cfg.writebackBatch)
        drainWritebacks();
}

void
CacheTier::drainWritebacks()
{
    const Tick now = eventq.now();
    unsigned drained = 0;
    while (!wbBuffer.empty()) {
        const PendingWriteback &pw = wbBuffer.front();
        MemRequest w;
        w.id = kWbIdBase | ++wbSeq;
        w.type = ReqType::Write;
        w.addr = pw.ev.lineAddr * kLineBytes;
        w.coreId = pw.coreId;
        w.data = pw.ev.data;
        w.ledger = pw.ledger;
        if (!down.enqueueWrite(w)) {
            wbStalled = true;
            break;
        }
        if (pw.ledger != nullptr) {
            // The span parked in the buffer (including drain stalls on
            // a full PCM write queue) is write-back buffer time.
            pw.ledger->setReqId(w.id);
            pw.ledger->account(obs::attrib::Phase::WbBufferStall, now);
        }
        PCMAP_OBS_TRACE(trace, obs::TracePoint::CacheWriteback, now, 0,
                        w.id, wordCount(pw.ev.dirtyWords),
                        wbBuffer.size() - 1);
        ++tierStats.writebacks;
        tierStats.dirtyWordsWrittenBack += wordCount(pw.ev.dirtyWords);
        wbBuffer.pop_front();
        ++drained;
    }
    if (wbBuffer.empty())
        wbStalled = false;
    if (drained > 0) {
        tierStats.writebackBatch.sample(drained);
        notifyUpstream(); // write-back slots freed
    }
}

void
CacheTier::onDownstreamRetry()
{
    // Stalled drains finish first (they free WB slots), then parked
    // fetches get another try, in MSHR order.
    if (wbStalled || wbBuffer.size() >= cfg.writebackBatch)
        drainWritebacks();
    for (Mshr &m : mshrs) {
        if (!m.issued && !issueFetch(m))
            break;
    }
}

void
CacheTier::notifyUpstream()
{
    if (!upstreamBlocked)
        return;
    upstreamBlocked = false;
    if (upstreamRetry)
        upstreamRetry();
}

void
CacheTier::flushDirty()
{
    for (Eviction &ev : array.flush()) {
        unsigned core = 0;
        if (const auto it = lastWriter.find(ev.lineAddr);
            it != lastWriter.end()) {
            core = it->second;
            lastWriter.erase(it);
        }
        obs::attrib::PhaseLedger *led = nullptr;
        if (attrib != nullptr) {
            led = attrib->open(obs::attrib::AttribOp::Writeback, core,
                               0, eventq.now());
        }
        wbBuffer.push_back(PendingWriteback{ev, core, led});
    }
    lastWriter.clear();
    wbStalled = true; // keep draining across downstream retries
    drainWritebacks();
}

} // namespace pcmap::cache
