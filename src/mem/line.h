/**
 * @file
 * The cache-line and chip-mask value types shared by every layer.
 *
 * Geometry constants follow the paper's evaluated system: 64-byte cache
 * lines striped as eight 8-byte words across eight x8 data chips, plus
 * a ninth SECDED ECC chip and a tenth PCC (parity correction code)
 * chip per rank (Figure 4).
 */

#ifndef PCMAP_MEM_LINE_H
#define PCMAP_MEM_LINE_H

#include <array>
#include <bit>
#include <cstdint>

namespace pcmap {

/// Bytes per cache line (DDR3 burst of 8 on a 64-bit bus).
inline constexpr unsigned kLineBytes = 64;
/// Bytes per word, i.e. the slice of a line owned by one data chip.
inline constexpr unsigned kWordBytes = 8;
/// Words per cache line.
inline constexpr unsigned kWordsPerLine = kLineBytes / kWordBytes;
/// Number of data chips in a rank.
inline constexpr unsigned kDataChips = 8;
/// Total chips in a PCMap rank: 8 data + ECC + PCC.
inline constexpr unsigned kChipsPerRank = 10;
/// Logical slot index of the SECDED ECC word within a line's codes.
inline constexpr unsigned kEccSlot = 8;
/// Logical slot index of the PCC parity word.
inline constexpr unsigned kPccSlot = 9;

/** Bitmask over the 8 word offsets of a line (bit i = word i). */
using WordMask = std::uint8_t;

/** Bitmask over the 10 chips of a rank (bit c = chip c). */
using ChipMask = std::uint16_t;

/** Mask selecting every chip of a rank. */
inline constexpr ChipMask kAllChips = (1u << kChipsPerRank) - 1;

/** Number of set bits in a word mask. */
constexpr unsigned
wordCount(WordMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

/** Number of set bits in a chip mask. */
constexpr unsigned
chipCount(ChipMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

/**
 * Visit each set bit of @p mask in ascending order — the bit-iteration
 * replacement for "loop 0..N, test membership" chip/word-set scans.
 * Masks are at most 10 bits, so the callback-per-bit shape inlines to
 * a tzcnt + blsr loop with no branch per absent member.
 */
template <typename Mask, typename Fn>
constexpr void
forEachSetBit(Mask mask, Fn &&fn)
{
    for (Mask m = mask; m != 0; m = static_cast<Mask>(m & (m - 1)))
        fn(static_cast<unsigned>(std::countr_zero(m)));
}

/**
 * A 64-byte cache line viewed as eight 64-bit words.
 * Word 0 holds bytes 0-7, word 1 bytes 8-15, and so on.
 */
struct CacheLine
{
    std::array<std::uint64_t, kWordsPerLine> w{};

    constexpr bool
    operator==(const CacheLine &other) const
    {
        return w == other.w;
    }

    /**
     * Mask of word offsets whose value differs from @p other — exactly
     * the "essential words" a differential write must update.
     */
    constexpr WordMask
    diffMask(const CacheLine &other) const
    {
        WordMask m = 0;
        for (unsigned i = 0; i < kWordsPerLine; ++i) {
            if (w[i] != other.w[i])
                m |= static_cast<WordMask>(1u << i);
        }
        return m;
    }

    /** XOR of all eight words: the PCC parity word for this line. */
    constexpr std::uint64_t
    parityWord() const
    {
        std::uint64_t p = 0;
        for (std::uint64_t v : w)
            p ^= v;
        return p;
    }
};

} // namespace pcmap

#endif // PCMAP_MEM_LINE_H
