file(REMOVE_RECURSE
  "CMakeFiles/irlp_test.dir/mem/irlp_test.cc.o"
  "CMakeFiles/irlp_test.dir/mem/irlp_test.cc.o.d"
  "irlp_test"
  "irlp_test.pdb"
  "irlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
