#include "cache/replacement.h"

#include <vector>

#include "sim/config.h"
#include "sim/log.h"

namespace pcmap::cache {

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
    case ReplPolicy::Lru:
        return "lru";
    case ReplPolicy::Mac:
        return "mac";
    }
    fatal("invalid ReplPolicy ", static_cast<int>(p));
}

ReplPolicy
replPolicyFromName(const std::string &name)
{
    if (name == "lru")
        return ReplPolicy::Lru;
    if (name == "mac")
        return ReplPolicy::Mac;
    fatalUnknown("unknown replacement policy", name, {"lru", "mac"},
                 "lru, mac");
}

namespace {

/**
 * Least-recently-used with a single structure-wide use counter.  The
 * counter ordering and the first-lowest tie-break reproduce the
 * original in-array implementation exactly, which is what keeps the
 * functional hierarchy (and every golden snapshot built on it)
 * byte-identical under the policy extraction.
 */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, unsigned assoc)
        : lastUse(sets * assoc, 0)
    {
    }

    void onHit(std::uint64_t i) override { lastUse[i] = ++useCounter; }
    void onInstall(std::uint64_t i) override
    {
        lastUse[i] = ++useCounter;
    }

    unsigned
    victim(std::uint64_t set, const WayState *ways,
           unsigned assoc) override
    {
        const std::uint64_t base = set * assoc;
        unsigned best = 0;
        bool have = false;
        for (unsigned w = 0; w < assoc; ++w) {
            if (!ways[w].valid)
                return w;
            if (!have || lastUse[base + w] < lastUse[base + best]) {
                best = w;
                have = true;
            }
        }
        return best;
    }

  private:
    std::vector<std::uint64_t> lastUse;
    std::uint64_t useCounter = 0;
};

/**
 * MAC-style multilevel policy.  Each way carries a level in
 * [0, kLevels): fills insert at level 1, hits promote one level
 * (saturating), and when a victim search finds the whole set above
 * level 0 every way is demoted by the set minimum (the "systematic"
 * ageing step).  The victim is the lowest-level way, clean before
 * dirty within a level, first way on ties — all deterministic.
 */
class MacPolicy final : public ReplacementPolicy
{
  public:
    static constexpr std::uint8_t kLevels = 4;

    MacPolicy(std::uint64_t sets, unsigned assoc)
        : level(sets * assoc, 0)
    {
    }

    void
    onHit(std::uint64_t i) override
    {
        if (level[i] + 1 < kLevels)
            ++level[i];
    }

    void onInstall(std::uint64_t i) override { level[i] = 1; }

    unsigned
    victim(std::uint64_t set, const WayState *ways,
           unsigned assoc) override
    {
        const std::uint64_t base = set * assoc;
        std::uint8_t min_level = kLevels;
        for (unsigned w = 0; w < assoc; ++w) {
            if (!ways[w].valid)
                return w;
            if (level[base + w] < min_level)
                min_level = level[base + w];
        }
        if (min_level > 0) {
            for (unsigned w = 0; w < assoc; ++w)
                level[base + w] -= min_level;
        }
        // Rank: level first, then dirtiness — evicting a clean line
        // costs nothing downstream, so dirty lines stay resident
        // longer and keep absorbing stores.
        unsigned best = 0;
        unsigned best_key = ~0u;
        for (unsigned w = 0; w < assoc; ++w) {
            const unsigned key =
                2u * level[base + w] + (ways[w].dirty ? 1u : 0u);
            if (key < best_key) {
                best_key = key;
                best = w;
            }
        }
        return best;
    }

  private:
    std::vector<std::uint8_t> level;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplPolicy p, std::uint64_t sets, unsigned assoc)
{
    switch (p) {
    case ReplPolicy::Lru:
        return std::make_unique<LruPolicy>(sets, assoc);
    case ReplPolicy::Mac:
        return std::make_unique<MacPolicy>(sets, assoc);
    }
    fatal("invalid ReplPolicy ", static_cast<int>(p));
}

} // namespace pcmap::cache
