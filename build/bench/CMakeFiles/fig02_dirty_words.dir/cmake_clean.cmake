file(REMOVE_RECURSE
  "CMakeFiles/fig02_dirty_words.dir/fig02_dirty_words.cpp.o"
  "CMakeFiles/fig02_dirty_words.dir/fig02_dirty_words.cpp.o.d"
  "fig02_dirty_words"
  "fig02_dirty_words.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dirty_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
