/**
 * @file
 * Tests for endurance accounting and Start-Gap wear leveling.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/wear.h"
#include "sim/rng.h"

namespace pcmap {
namespace {

TEST(WearTracker, StartsBalanced)
{
    WearTracker w;
    EXPECT_EQ(w.total(), 0u);
    EXPECT_DOUBLE_EQ(w.chipImbalance(), 1.0);
    EXPECT_DOUBLE_EQ(w.chipCv(), 0.0);
    EXPECT_DOUBLE_EQ(w.lineImbalance(), 1.0);
}

TEST(WearTracker, EvenWritesStayBalanced)
{
    WearTracker w;
    for (unsigned c = 0; c < kChipsPerRank; ++c)
        w.recordChipWrite(c, 100);
    EXPECT_DOUBLE_EQ(w.chipImbalance(), 1.0);
    EXPECT_DOUBLE_EQ(w.chipCv(), 0.0);
    EXPECT_EQ(w.total(), 100u * kChipsPerRank);
}

TEST(WearTracker, SkewShowsInImbalance)
{
    WearTracker w;
    w.recordChipWrite(0, 900);
    for (unsigned c = 1; c < kChipsPerRank; ++c)
        w.recordChipWrite(c, 100);
    // mean = (900 + 9*100)/10 = 180; max/mean = 5.0
    EXPECT_DOUBLE_EQ(w.chipImbalance(), 5.0);
    EXPECT_GT(w.chipCv(), 1.0);
}

TEST(WearTracker, LineImbalanceTracksHotLines)
{
    WearTracker w;
    for (int i = 0; i < 90; ++i)
        w.recordLineWrite(7);
    for (std::uint64_t l = 0; l < 9; ++l)
        w.recordLineWrite(100 + l);
    // 10 lines, 99 writes, hottest 90: max/mean = 90/9.9
    EXPECT_NEAR(w.lineImbalance(), 90.0 / 9.9, 1e-9);
    EXPECT_EQ(w.linesTouched(), 10u);
}

TEST(StartGap, InitialMappingIsIdentity)
{
    StartGapRemapper sg(16);
    for (std::uint64_t l = 0; l < 16; ++l)
        EXPECT_EQ(sg.remap(l), l); // gap starts at slot N
}

TEST(StartGap, MappingIsAlwaysInjectiveAndAvoidsGap)
{
    StartGapRemapper sg(17, 3);
    for (int step = 0; step < 500; ++step) {
        std::set<std::uint64_t> used;
        for (std::uint64_t l = 0; l < 17; ++l) {
            const std::uint64_t p = sg.remap(l);
            EXPECT_LE(p, 17u);
            EXPECT_NE(p, sg.gapPosition());
            EXPECT_TRUE(used.insert(p).second)
                << "collision at step " << step;
        }
        sg.onWrite();
    }
}

TEST(StartGap, GapMovesEveryPeriodWrites)
{
    StartGapRemapper sg(8, 4);
    EXPECT_EQ(sg.gapPosition(), 8u);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(sg.onWrite());
    EXPECT_TRUE(sg.onWrite()); // 4th write moves the gap
    EXPECT_EQ(sg.gapPosition(), 7u);
    EXPECT_EQ(sg.gapMovements(), 1u);
}

TEST(StartGap, FullSweepAdvancesStart)
{
    StartGapRemapper sg(4, 1); // gap moves on every write
    EXPECT_EQ(sg.startOffset(), 0u);
    // Gap: 4 -> 3 -> 2 -> 1 -> 0; next movement wraps and bumps start.
    for (int i = 0; i < 5; ++i)
        sg.onWrite();
    EXPECT_EQ(sg.startOffset(), 1u);
    EXPECT_EQ(sg.gapPosition(), 4u);
}

TEST(StartGap, EveryLineVisitsManyPhysicalSlots)
{
    // The whole point: over time a hot logical line migrates across
    // physical slots.
    StartGapRemapper sg(8, 1);
    std::set<std::uint64_t> visited;
    for (int i = 0; i < 9 * 8; ++i) {
        visited.insert(sg.remap(3));
        sg.onWrite();
    }
    EXPECT_GE(visited.size(), 8u);
}

TEST(StartGap, LevelsAHotLineUniformly)
{
    // Hammer a single logical line; with Start-Gap the physical
    // writes spread across slots.
    StartGapRemapper sg(16, 8);
    std::vector<std::uint64_t> slot_writes(17, 0);
    for (int i = 0; i < 16 * 8 * 17; ++i) {
        ++slot_writes[sg.remap(0)];
        sg.onWrite();
    }
    std::uint64_t max_w = 0;
    std::uint64_t nonzero = 0;
    for (std::uint64_t w : slot_writes) {
        max_w = std::max(max_w, w);
        nonzero += w > 0 ? 1 : 0;
    }
    EXPECT_GE(nonzero, 16u); // nearly every slot absorbed some writes
    // Without leveling one slot would take all 2176 writes.
    EXPECT_LT(max_w, 2176u / 4);
}

TEST(StartGapDeath, ZeroRegionIsFatal)
{
    EXPECT_EXIT(StartGapRemapper sg(0), ::testing::ExitedWithCode(1),
                "at least one line");
}

} // namespace
} // namespace pcmap
