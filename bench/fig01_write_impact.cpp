/**
 * @file
 * Figure 1: how PCM's asymmetric write latency hurts reads in the
 * baseline system.
 *
 * For each of the 13 SPEC CPU 2006 programs the paper plots, this
 * harness runs the baseline controller twice — once with the real
 * asymmetric PCM timing (write 120 ns vs read 60 ns) and once with a
 * hypothetical symmetric PCM (write = read = 60 ns) — and reports:
 *   - the percentage of reads whose service was delayed by an ongoing
 *     write (the numbers atop Figure 1's bars: 11.5% .. 38.1%), and
 *   - the effective read latency normalized to the symmetric device
 *     (Figure 1's bars: 1.2x .. 1.8x).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace pcmap;
    using namespace pcmap::bench;

    const HarnessConfig hc = HarnessConfig::parse(argc, argv);
    banner("Figure 1: write impact on baseline reads",
           "Fig. 1 — paper reports 11.5%-38.1% of reads delayed and "
           "1.2x-1.8x effective read latency vs symmetric PCM",
           hc);

    std::printf("%-12s %12s %16s %14s %14s\n", "program",
                "%rd-delayed", "latAsymNs", "latSymNs", "normalized");
    rule(74);

    std::vector<double> delayed;
    std::vector<double> ratios;
    for (const std::string &prog : workload::figure1Programs()) {
        SystemConfig asym = hc.system(SystemMode::Baseline);
        const SystemResults ra = runWorkload(asym, prog);

        SystemConfig sym = hc.system(SystemMode::Baseline);
        sym.timing.setNs = sym.timing.arrayReadNs;   // symmetric PCM
        sym.timing.resetNs = sym.timing.arrayReadNs;
        const SystemResults rs = runWorkload(sym, prog);

        const double ratio = rs.avgReadLatencyNs > 0.0
                                 ? ra.avgReadLatencyNs /
                                       rs.avgReadLatencyNs
                                 : 0.0;
        delayed.push_back(ra.pctReadsDelayedByWrite);
        ratios.push_back(ratio);
        std::printf("%-12s %11.1f%% %16.1f %14.1f %13.2fx\n",
                    prog.c_str(), ra.pctReadsDelayedByWrite,
                    ra.avgReadLatencyNs, rs.avgReadLatencyNs, ratio);
    }
    rule(74);
    std::printf("%-12s %11.1f%% %46.2fx\n", "average",
                mean(delayed), mean(ratios));
    std::printf("\npaper: delayed reads span 11.5%%-38.1%%; "
                "normalized latency spans 1.2x-1.8x\n");
    return 0;
}
