#include "core/policy/access_scheduler.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/log.h"

namespace pcmap {

std::size_t
AccessScheduler::selectWrite(const WriteQueue &write_queue,
                             const std::vector<Tick> &slot_free_at,
                             Tick now, Tick &soonest) const
{
    std::size_t head_idx = write_queue.size();
    Tick soonest_slot = kTickMax;
    // Selection depends only on per-rank slot state, so after the
    // first (oldest) entry of a busy rank, later entries of that rank
    // can neither be picked nor change soonest; once every rank has
    // been seen busy the rest of the queue cannot matter at all.
    const std::size_t num_ranks = slot_free_at.size();
    if (num_ranks <= 32) {
        std::uint32_t seen = 0;
        const std::uint32_t all =
            num_ranks == 32 ? 0xffffffffu
                            : ((1u << num_ranks) - 1u);
        for (std::size_t i = 0; i < write_queue.size(); ++i) {
            const unsigned w_rank = write_queue[i].loc.rank;
            const std::uint32_t bit = 1u << w_rank;
            if (seen & bit)
                continue;
            if (now >= slot_free_at[w_rank]) {
                head_idx = i;
                break;
            }
            seen |= bit;
            soonest_slot = std::min(soonest_slot, slot_free_at[w_rank]);
            if (seen == all)
                break;
        }
    } else {
        for (std::size_t i = 0; i < write_queue.size(); ++i) {
            const unsigned w_rank = write_queue[i].loc.rank;
            if (now >= slot_free_at[w_rank]) {
                head_idx = i;
                break;
            }
            soonest_slot = std::min(soonest_slot, slot_free_at[w_rank]);
        }
    }
    soonest = soonest_slot;
    return head_idx;
}

ReadPlan
FrFcfsScheduler::planRead(ReadQueue &read_queue,
                          const BankStateView &banks,
                          const ReadWindowModel &windows, Tick now,
                          bool immediate_only,
                          unsigned pending_verifies) const
{
    ReadPlan best;

    // Whether blocked entries get speculative plans at all this pass;
    // hoisted so the scan can prune around it.
    const bool spec_capable =
        speculates() && pending_verifies < cfg.specReadBufferCap;

    // Strict FCFS considers only the oldest read.
    const std::size_t scan_limit =
        cfg.readScheduling == ReadScheduling::Fcfs
            ? std::min<std::size_t>(1, read_queue.size())
            : read_queue.size();
    for (std::size_t i = 0; i < scan_limit; ++i) {
        ReadEntry &entry = read_queue[i];
        const DecodedAddr &loc = entry.loc;
        const std::uint64_t line = entry.line;
        const ChipMask data_mask = entry.dataMask;
        const unsigned ecc_chip = entry.eccChip;
        const ChipMask inline_mask = entry.inlineMask;

        // Chip availability, clamped to now (the exact value is only
        // ever consumed clamped).  The per-bank ceiling settles the
        // common all-free case with one compare instead of a walk
        // over the mask.
        const Tick free_at =
            banks.busyCeiling(loc.rank, loc.bank) <= now
                ? now
                : std::max(now, banks.freeAt(loc.rank, inline_mask,
                                             loc.bank));
        const bool blocked = free_at > now;

        bool delayed_by_write = false;
        if (blocked) {
            // Blocked: is a write responsible?
            for (ChipMask m = inline_mask; m != 0 && !delayed_by_write;
                 m = static_cast<ChipMask>(m & (m - 1))) {
                const unsigned c =
                    static_cast<unsigned>(std::countr_zero(m));
                const ChipBankState &s =
                    banks.state(loc.rank, c, loc.bank);
                if (s.busyUntil > now && s.busyWithWrite) {
                    entry.delayedByWrite = true;
                    delayed_by_write = true;
                }
            }
        }

        const bool spec_here = blocked && spec_capable;

        // Dominance prune: computeReadWindow never reports a start
        // before its lower bound, so once some plan starts at or
        // before free_at (winning the row-hit tiebreak), this entry's
        // normal plan cannot displace it.  Exact only when no
        // speculative plan will be consulted — those read around the
        // busy chip and may start earlier than free_at.
        if (!spec_here && best.feasible &&
            (free_at > best.start ||
             (free_at == best.start && best.rowHit)))
            continue;

        // --- Normal (coarse) plan: all data chips plus ECC inline ---
        ReadPlan normal;
        normal.feasible = true;
        normal.index = i;
        normal.rank = loc.rank;
        normal.delayedByWrite = delayed_by_write;
        normal.rowHit =
            banks.rowOpenAll(loc.rank, inline_mask, loc.bank, loc.row);
        windows.computeReadWindow(inline_mask, loc.bank, loc.row,
                                  free_at, normal.rowHit, normal.start,
                                  normal.end);
        normal.chips = inline_mask;

        ReadPlan candidate = normal;

        // --- Speculative plans (PCMap RoW machinery) ---
        if (spec_here) {
            considerSpeculative(entry, i, loc, line, data_mask, ecc_chip,
                                banks, windows, now, candidate);
        }

        // Keep the globally best candidate: earliest start, then
        // row-buffer hit, then age (scan order), then non-speculative.
        const bool better =
            !best.feasible || candidate.start < best.start ||
            (candidate.start == best.start && candidate.rowHit &&
             !best.rowHit);
        if (better)
            best = candidate;
    }

    if (immediate_only && best.feasible && best.start > now)
        best.feasible = false;
    return best;
}

void
RowScheduler::considerSpeculative(const ReadEntry &entry,
                                  std::size_t index,
                                  const DecodedAddr &loc,
                                  std::uint64_t line, ChipMask data_mask,
                                  unsigned ecc_chip,
                                  const BankStateView &banks,
                                  const ReadWindowModel &windows,
                                  Tick now, ReadPlan &candidate) const
{
    const ChipMask busy = banks.busyChips(loc.rank, loc.bank, now);
    const ChipMask busy_data = busy & data_mask;
    const bool ecc_busy = (busy >> ecc_chip) & 1u;

    if (busy_data == 0 && ecc_busy) {
        // Data chips free; only the ECC check must wait.
        // Deliver speculatively, defer the check.
        ReadPlan spec;
        spec.feasible = true;
        spec.index = index;
        spec.rank = loc.rank;
        spec.chips = data_mask;
        spec.speculative = true;
        spec.eccDeferred = true;
        spec.rowHit =
            banks.rowOpenAll(loc.rank, data_mask, loc.bank, loc.row);
        windows.computeReadWindow(
            data_mask, loc.bank, loc.row,
            std::max(now, banks.freeAt(loc.rank, data_mask, loc.bank)),
            spec.rowHit, spec.start, spec.end);
        if (spec.start < candidate.start) {
            candidate = spec;
            // Planning repeats per kick until the entry issues, so the
            // same request may log several SpecPlan events; the issue
            // event is the authoritative one.
            PCMAP_OBS_TRACE(traceRec, obs::TracePoint::SpecPlan, now, 0,
                            entry.req.id, data_mask,
                            obs::kReadFlagEccDeferred, traceChannel,
                            loc.rank, loc.bank);
        }
    } else if (chipCount(busy_data) == 1) {
        // Exactly one data chip busy with a write: RoW.
        unsigned busy_chip = 0;
        while (!((busy_data >> busy_chip) & 1u))
            ++busy_chip;
        const ChipMask write_busy =
            banks.busyWriteChips(loc.rank, loc.bank, now);
        const unsigned pcc_chip = entry.pccChip;
        pcmap_assert(pcc_chip != kNoWord);
        const bool pcc_busy = (busy >> pcc_chip) & 1u;
        const ChipMask others =
            data_mask & static_cast<ChipMask>(~busy_data);
        if (((write_busy >> busy_chip) & 1u) && !pcc_busy &&
            banks.freeAt(loc.rank, others, loc.bank) <= now) {
            ReadPlan row_plan;
            row_plan.feasible = true;
            row_plan.index = index;
            row_plan.rank = loc.rank;
            row_plan.reconstruct = true;
            row_plan.speculative = true;
            row_plan.busyChip = busy_chip;
            row_plan.missingWord = layout.wordForChip(line, busy_chip);
            pcmap_assert(row_plan.missingWord != kNoWord);
            ChipMask chips =
                others | static_cast<ChipMask>(1u << pcc_chip);
            if (!ecc_busy) {
                chips |= static_cast<ChipMask>(1u << ecc_chip);
            } else {
                row_plan.eccDeferred = true;
            }
            row_plan.chips = chips;
            row_plan.rowHit =
                banks.rowOpenAll(loc.rank, chips, loc.bank, loc.row);
            windows.computeReadWindow(chips, loc.bank, loc.row, now,
                                      row_plan.rowHit, row_plan.start,
                                      row_plan.end);
            if (row_plan.start < candidate.start) {
                candidate = row_plan;
                PCMAP_OBS_TRACE(traceRec, obs::TracePoint::SpecPlan,
                                now, 0, entry.req.id, chips,
                                obs::kReadFlagReconstruct |
                                    (row_plan.eccDeferred
                                         ? obs::kReadFlagEccDeferred
                                         : 0),
                                traceChannel, loc.rank, loc.bank);
            }
        }
    }
}

std::unique_ptr<AccessScheduler>
makeAccessScheduler(const ControllerConfig &cfg,
                    const AddressMapper &mapper, const LineLayout &ll)
{
    if (cfg.enableRoW)
        return std::make_unique<RowScheduler>(cfg, mapper, ll);
    return std::make_unique<FrFcfsScheduler>(cfg, mapper, ll);
}

} // namespace pcmap
