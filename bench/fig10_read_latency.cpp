/**
 * @file
 * Figure 10: effective read latency normalized to the baseline
 * (lower is better).
 *
 * Paper anchors: RoW-NR alone cuts effective read latency by 6-14%;
 * adding WoW and the rotations keeps reducing it; RWoW-RDE reaches
 * roughly half the baseline latency on both workload classes.
 *
 * The run matrix is a sweep::SweepSpec executed via the sweep runner;
 * pass threads=N to parallelize and jsonl=PATH to keep the raw rows.
 */

#include "bench_common.h"

namespace {

double
readLatencyMetric(const pcmap::SystemResults &r)
{
    return r.avgReadLatencyNs; // absolute ns (base-abs column)
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pcmap::bench;
    return figureMain(
        argc, argv,
        {"Figure 10: effective read latency (normalized, lower is "
         "better)",
         "Fig. 10 — RoW-NR 0.86-0.94x; RWoW-RDE approaches ~0.5x "
         "(base-abs column is ns)",
         readLatencyMetric, /*normalize=*/true});
}
