/**
 * @file
 * Hamming(72,64) SECDED codec.
 *
 * This is the per-64-bit-word single-error-correcting, double-error-
 * detecting code used by conventional ECC DIMMs (Section II-A of the
 * paper): 64 data bits plus 8 check bits, one extra x8 chip per rank.
 *
 * Construction: an extended Hamming code over code positions 1..71,
 * where the seven power-of-two positions hold check bits and the other
 * 64 positions hold data bits, plus an overall parity bit covering the
 * whole 72-bit word.  The syndrome of a single-bit error equals its
 * code position, which makes correction a table-free bit flip.
 */

#ifndef PCMAP_ECC_SECDED_H
#define PCMAP_ECC_SECDED_H

#include <cstdint>

namespace pcmap::ecc {

/** Outcome of a SECDED decode. */
enum class SecdedStatus : std::uint8_t
{
    Ok,              ///< No error detected.
    CorrectedData,   ///< Single-bit error in a data bit; corrected.
    CorrectedCheck,  ///< Single-bit error in a check bit; data intact.
    Uncorrectable,   ///< Double-bit (or worse even-weight) error.
};

/** Result of decoding a 72-bit SECDED word. */
struct SecdedResult
{
    SecdedStatus status = SecdedStatus::Ok;
    /** Data after correction (valid unless Uncorrectable). */
    std::uint64_t data = 0;
    /**
     * For CorrectedData: the index (0..63) of the flipped data bit.
     * For CorrectedCheck: the index (0..7) of the flipped check bit.
     * Otherwise 0.
     */
    unsigned bitIndex = 0;
};

/** Compute the 8 check bits protecting @p data. */
std::uint8_t secdedEncode(std::uint64_t data);

/**
 * Decode a (data, check) pair, correcting a single-bit error anywhere
 * in the 72-bit code word and detecting double-bit errors.
 */
SecdedResult secdedDecode(std::uint64_t data, std::uint8_t check);

/**
 * Convenience: true when (data, check) passes with no error at all.
 * Cheaper than a full decode when only a clean/dirty answer is needed.
 */
bool secdedClean(std::uint64_t data, std::uint8_t check);

} // namespace pcmap::ecc

#endif // PCMAP_ECC_SECDED_H
