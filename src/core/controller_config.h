/**
 * @file
 * Configuration of a PCMap memory controller, plus the named presets
 * for the six systems evaluated in Section V of the paper.
 */

#ifndef PCMAP_CORE_CONTROLLER_CONFIG_H
#define PCMAP_CORE_CONTROLLER_CONFIG_H

#include <optional>
#include <string>

#include "core/layout.h"
#include "mem/timing.h"

namespace pcmap {

/**
 * The six evaluated systems (Section V):
 *
 *  | name      | RoW | WoW | word rot. | ECC/PCC rot. |
 *  |-----------|-----|-----|-----------|--------------|
 *  | Baseline  |  -  |  -  |     -     |      -       |
 *  | RoW-NR    |  x  |  -  |     -     |      -       |
 *  | WoW-NR    |  -  |  x  |     -     |      -       |
 *  | RWoW-NR   |  x  |  x  |     -     |      -       |
 *  | RWoW-RD   |  x  |  x  |     x     |      -       |
 *  | RWoW-RDE  |  x  |  x  |     x     |      x       |
 */
enum class SystemMode
{
    Baseline,
    RoW_NR,
    WoW_NR,
    RWoW_NR,
    RWoW_RD,
    RWoW_RDE,
};

/** Human-readable name of a system mode (matches the paper's labels). */
const char *systemModeName(SystemMode mode);

/** Comma-separated list of all mode labels (for error messages). */
std::string systemModeNames();

/**
 * Parse a mode from its systemModeName() label ("RWoW-RDE"),
 * case-insensitively; also accepts '_' for '-' so shell-friendly
 * spellings work.  nullopt on an unknown name.
 */
std::optional<SystemMode> systemModeFromName(const std::string &name);

/** All six modes in the paper's presentation order. */
inline constexpr SystemMode kAllModes[] = {
    SystemMode::Baseline, SystemMode::RoW_NR,  SystemMode::WoW_NR,
    SystemMode::RWoW_NR,  SystemMode::RWoW_RD, SystemMode::RWoW_RDE,
};

/** Row-buffer management policy. */
enum class PagePolicy : std::uint8_t
{
    Open,   ///< rows stay open until a conflict (FR-FCFS exploits hits)
    Closed, ///< rows close after every access (no hit/conflict skew)
};

/** Read scheduling discipline. */
enum class ReadScheduling : std::uint8_t
{
    FrFcfs, ///< first-ready FCFS: startable/row-hit reads first
    Fcfs,   ///< strict arrival order
};

/** Full parameterization of one channel's memory controller. */
struct ControllerConfig
{
    // --- Mechanism switches ---
    bool enableRoW = false;  ///< Serve reads during 1-word writes.
    bool enableWoW = false;  ///< Consolidate disjoint-chip writes.
    RotationMode rotation = RotationMode::None;
    /**
     * True for PCMap DIMMs: rank subsetting is available, writes touch
     * only essential chips, and the tenth (PCC) chip is populated.
     * False models the conventional 9-chip ECC DIMM baseline whose
     * writes occupy the whole bank for the full write latency.
     */
    bool fineGrained = false;

    // --- Queueing policy (Section II-B, Table I) ---
    unsigned readQueueCap = 8;
    unsigned writeQueueCap = 32;
    /**
     * Table I reads "32x64B write queue ... for banks", which can be
     * parsed as one 32-entry queue per controller (default) or one
     * per bank.  Per-bank queues buffer 8x more write-backs, expose
     * many more same-bank WoW merge candidates, and push IRLP toward
     * the paper's near-8 values for MP1-MP3 (see EXPERIMENTS.md).
     */
    bool perBankWriteQueues = false;
    /** Drain writes when the WQ is more than this fraction full. */
    double drainHighWatermark = 0.8;
    /** Stop draining when the WQ falls to this fraction. */
    double drainLowWatermark = 0.25;

    // --- WoW tuning ---
    /** Max writes consolidated into one group (incl. the trigger). */
    unsigned wowMaxMerge = 8;
    /** How many WQ entries past the head the scheduler examines. */
    unsigned wowScanDepth = 32;

    // --- Ablation switches (modelling studies; keep true for the
    //     paper-faithful system) ---
    /** Charge chip time for deferred ECC/PCC code updates. */
    bool modelCodeUpdateTraffic = true;
    /** Charge chip time for deferred SECDED verification reads. */
    bool modelVerifyTraffic = true;
    /** Let RoW configurations serve reads while draining writes. */
    bool serveReadsDuringDrain = true;
    /** Split one-word writes into data+ECC then PCC steps (RoW). */
    bool enableTwoStep = true;
    /**
     * Section IV-B4 extension: serialize multi-essential-word writes
     * into one-chip partial writes so RoW stays applicable.  The
     * paper discusses but does not enable this (it stretches write
     * latency); off by default, exercised by the ablation harness.
     * Only applies when WoW is disabled (WoW prefers consolidating
     * such writes in parallel instead).
     */
    bool rowMultiWordWrites = false;
    /**
     * Related-work comparator (Qureshi et al., HPCA 2010): an arriving
     * read may cancel an in-progress coarse write, which then restarts
     * from scratch later.  Only meaningful on the conventional
     * (non-fine-grained) DIMM — PCMap overlaps instead of cancelling.
     */
    bool enableWriteCancellation = false;
    /** Cancels allowed per write before it runs to completion. */
    unsigned maxWriteCancels = 3;
    /**
     * Related-work comparator (Qureshi et al., ISCA 2012): while a
     * write-back sits in the queue, a background operation SETs the
     * whole line; the eventual write then only needs the fast RESET
     * pulse (50 ns vs 120 ns).  The trade: the preset occupies every
     * chip of the bank in the background and destroys the line's
     * differential-write savings (every word is rewritten).  Only
     * meaningful on the conventional DIMM.
     */
    bool enablePreset = false;
    /**
     * Cancel only when at least this fraction of the write remains
     * (cancelling an almost-done write wastes more than it saves).
     */
    double cancelMinRemainingFrac = 0.4;
    /**
     * Buffer entries for ECC/PCC updates awaiting background
     * propagation.  When full, write service stalls until the busy
     * code chips catch up — the serialization on the fixed ECC/PCC
     * chips that Section IV-C2's rotation removes.
     */
    unsigned codeUpdateBacklogCap = 16;
    /**
     * Outstanding speculative (not yet SECDED-verified) reads the
     * controller can track.  Each needs a buffer entry holding the
     * delivered line until its deferred check completes, so the
     * resource is small; when exhausted, reads wait for the busy
     * ECC/data chip instead of speculating.
     */
    unsigned specReadBufferCap = 8;

    // --- Scheduling variants (Section II-B describes FR-FCFS with
    //     open rows; the alternatives quantify what that buys) ---
    PagePolicy pagePolicy = PagePolicy::Open;
    ReadScheduling readScheduling = ReadScheduling::FrFcfs;

    // --- Host-side sizing hint (no effect on simulated behaviour) ---
    /**
     * Expected distinct lines written over the run (0 = unknown).
     * Pre-sizes the backing store's page directory and the wear
     * tracker's per-line map so warm-up avoids rehash storms; the
     * simulated results are identical either way.
     */
    std::uint64_t footprintLinesHint = 0;

    // --- Device timing ---
    PcmTiming timing{};

    // --- Rank/bank geometry (per channel) ---
    unsigned banksPerRank = 8;

    /** Derived: does this configuration populate the PCC chip? */
    bool hasPcc() const { return fineGrained; }

    /** Build the chip layout implied by this config. */
    ChipLayout layout() const { return ChipLayout(rotation, hasPcc()); }

    /** Preset for one of the paper's six systems. */
    static ControllerConfig forMode(SystemMode mode);

    /** Sanity checks; fatal() on inconsistent settings. */
    void validate() const;
};

} // namespace pcmap

#endif // PCMAP_CORE_CONTROLLER_CONFIG_H
