# Empty dependencies file for pcmap_bench_common.
# This may be replaced when dependencies are built.
