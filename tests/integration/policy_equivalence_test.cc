/**
 * @file
 * Refactor-equivalence harness for the policy layer.
 *
 * Two guarantees, both byte-level:
 *
 *  1. Every SystemMode preset and its canonical policy composition
 *     (e.g. RWoW-RDE vs "row+wow+rde") produce identical sweep JSONL
 *     modulo the system label, for every preset x smoke workload.
 *
 *  2. The six presets' JSONL output — across all four device
 *     organizations, slc block first — matches a checked-in snapshot
 *     byte for byte, so any future policy-layer change that perturbs
 *     simulation results is caught even if it perturbs both the
 *     preset and the composed path the same way.  The slc prefix of
 *     the snapshot is additionally pinned to equal the legacy
 *     (org-free) sweep output.
 *
 * Regenerate the snapshot after an intentional simulator change with:
 *     PCMAP_UPDATE_GOLDEN=1 ./build/tests/policy_equivalence_test
 * then review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cache/tier.h"
#include "core/policy/controller_policy.h"
#include "fabric/fabric.h"
#include "sweep/sweep_io.h"
#include "sweep/sweep_runner.h"

#ifndef PCMAP_GOLDEN_SWEEP_FILE
#error "build must define PCMAP_GOLDEN_SWEEP_FILE"
#endif

namespace pcmap {
namespace {

/** Small but mechanism-exercising: both smoke workloads, 4 cores. */
sweep::SweepSpec
smokeSpec()
{
    sweep::SweepSpec spec;
    spec.workloads = {"MP1", "canneal"};
    spec.seeds = {1};
    spec.configs[0].base.instructionsPerCore = 15'000;
    return spec;
}

std::string
runJsonl(const sweep::SweepSpec &spec)
{
    sweep::SweepRunner::Options opts;
    opts.threads = 4;
    return sweep::toJsonl(sweep::SweepRunner(opts).run(spec));
}

/** Replace every occurrence of @p from in @p text with @p to. */
std::string
relabel(std::string text, const std::string &from, const std::string &to)
{
    const std::string needle = "\"mode\":\"" + from + "\"";
    const std::string repl = "\"mode\":\"" + to + "\"";
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        text.replace(pos, needle.size(), repl);
        pos += repl.size();
    }
    return text;
}

TEST(PolicyEquivalence, EveryPresetMatchesItsComposition)
{
    for (const SystemMode mode : kAllModes) {
        const std::string composition =
            ControllerPolicy::forMode(mode).composition();

        sweep::SweepSpec as_mode = smokeSpec();
        as_mode.modes = {mode};

        // Force the composition down the policy-axis path (bypass the
        // preset routing the CLI does) so the composed ControllerConfig
        // itself is what gets exercised.
        sweep::SweepSpec as_policy = smokeSpec();
        as_policy.modes.clear();
        as_policy.policies = {composition};

        const std::string via_mode = runJsonl(as_mode);
        const std::string via_policy = runJsonl(as_policy);
        EXPECT_EQ(relabel(via_policy, composition, systemModeName(mode)),
                  via_mode)
            << systemModeName(mode) << " vs " << composition
            << ": the composed policy must be byte-identical to the "
               "preset";
    }
}

/** The golden matrix: six presets x four device organizations. */
sweep::SweepSpec
goldenSpec()
{
    sweep::SweepSpec spec = smokeSpec();
    spec.modes.assign(std::begin(kAllModes), std::end(kAllModes));
    spec.orgs.assign(std::begin(kAllOrgs), std::end(kAllOrgs));
    return spec;
}

/**
 * Fabric rows appended to the snapshot: a 4-tenant mixed-QoS
 * open-loop sweep over a real link, two presets x one workload.
 * These rows ride after the legacy matrix so they are pure insertions
 * — the pre-fabric bytes of golden_sweep.jsonl are untouched.
 */
sweep::SweepSpec
fabricGoldenSpec()
{
    sweep::SweepSpec spec;
    spec.workloads = {"MP1"};
    spec.seeds = {1};
    spec.modes = {SystemMode::Baseline, SystemMode::RWoW_RDE};
    spec.configs[0].name = "fabric";
    fabric::FabricConfig &fab = spec.configs[0].base.fabric;
    fab.tenants.resize(4);
    for (unsigned t = 0; t < 4; ++t) {
        fab.tenants[t].arrival = fabric::ArrivalKind::Poisson;
        fab.tenants[t].ratePerUs = 8.0;
        fab.tenants[t].qos = t % 2 == 0
                                 ? fabric::QosClass::LatencySensitive
                                 : fabric::QosClass::BestEffort;
        fab.tenants[t].requests = 2'000;
    }
    fab.arb = fabric::LinkArb::WeightedRoundRobin;
    fab.linkGbps = 16.0;
    fab.linkNs = 20.0;
    return spec;
}

/**
 * Cache-tier rows appended after the fabric rows: two presets x one
 * workload behind a 256K DRAM tier, once per replacement policy.
 * Like the fabric rows these are pure insertions — everything before
 * them in golden_sweep.jsonl stays byte-identical.
 */
sweep::SweepSpec
cacheGoldenSpec()
{
    sweep::SweepSpec spec;
    spec.workloads = {"MP1"};
    spec.seeds = {1};
    spec.modes = {SystemMode::Baseline, SystemMode::RWoW_RDE};
    spec.configs[0].name = "cache-lru";
    spec.configs[0].base.instructionsPerCore = 15'000;
    spec.configs[0].base.tier =
        cache::tierConfigFromString("dram:256K:8:lru");
    sweep::ConfigVariant mac = spec.configs[0];
    mac.name = "cache-mac";
    mac.base.tier.repl = cache::ReplPolicy::Mac;
    spec.configs.push_back(mac);
    return spec;
}

/** The full snapshot: legacy matrix, fabric rows, then cache rows. */
std::string
goldenJsonl()
{
    return runJsonl(goldenSpec()) + runJsonl(fabricGoldenSpec()) +
           runJsonl(cacheGoldenSpec());
}

TEST(PolicyEquivalence, SixPresetJsonlMatchesGoldenSnapshot)
{
    const std::string actual = goldenJsonl();
    ASSERT_FALSE(actual.empty());

    const std::string path = PCMAP_GOLDEN_SWEEP_FILE;
    if (std::getenv("PCMAP_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden sweep snapshot regenerated at " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "cannot read golden file " << path
        << "; regenerate with PCMAP_UPDATE_GOLDEN=1 "
           "./build/tests/policy_equivalence_test";
    std::ostringstream golden;
    golden << in.rdbuf();

    // Byte-for-byte: the simulator is deterministic and the JSONL
    // formatter is locale-independent, so any diff is a real
    // behavioural change (regenerate only if it is intentional).
    EXPECT_EQ(actual, golden.str())
        << "preset JSONL drifted from the snapshot; if intentional, "
           "regenerate with PCMAP_UPDATE_GOLDEN=1 "
           "./build/tests/policy_equivalence_test";
}

TEST(PolicyEquivalence, FabricGoldenRowsArePureInsertions)
{
    // The legacy matrix must be a byte-exact prefix of the combined
    // snapshot: adding the fabric rows is not allowed to perturb (or
    // reorder around) a single pre-fabric row.
    const std::string legacy = runJsonl(goldenSpec());
    const std::string full = goldenJsonl();
    ASSERT_GT(full.size(), legacy.size());
    EXPECT_EQ(full.substr(0, legacy.size()), legacy);
}

TEST(PolicyEquivalence, CacheGoldenRowsArePureInsertions)
{
    // Everything that predates the cache tier — the legacy matrix and
    // the fabric rows — must be a byte-exact prefix of the combined
    // snapshot: the tier=dram rows ride strictly behind them.
    const std::string pre_cache =
        runJsonl(goldenSpec()) + runJsonl(fabricGoldenSpec());
    const std::string full = goldenJsonl();
    ASSERT_GT(full.size(), pre_cache.size());
    EXPECT_EQ(full.substr(0, pre_cache.size()), pre_cache);
}

TEST(PolicyEquivalence, SlcGoldenPrefixEqualsLegacySixPresetSweep)
{
    // The org axis expands slc-first, so the first quarter of the
    // golden matrix must be byte-for-byte what the pre-org-axis
    // six-preset sweep produced — org=slc is not allowed to perturb a
    // single existing row.
    sweep::SweepSpec legacy = smokeSpec();
    legacy.modes.assign(std::begin(kAllModes), std::end(kAllModes));
    const std::string legacy_jsonl = runJsonl(legacy);
    const std::string full = runJsonl(goldenSpec());
    ASSERT_FALSE(legacy_jsonl.empty());
    ASSERT_GT(full.size(), legacy_jsonl.size());
    EXPECT_EQ(full.substr(0, legacy_jsonl.size()), legacy_jsonl);
}

} // namespace
} // namespace pcmap
