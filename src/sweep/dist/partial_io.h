/**
 * @file
 * The shard-partial JSONL format and the deterministic merge.
 *
 * A partial is one shard's output: a single header line
 *
 *   {"pcmapSweepPartial":1,"fingerprint":"<16 hex>","shard":K,
 *    "shards":N,"indexBegin":B,"indexEnd":E,"totalPoints":T}
 *
 * followed by ordinary report rows (exactly the toJsonLine() bytes a
 * single-process run would emit for those indices), in ascending
 * index order within [B, E).  The fingerprint is
 * specFingerprint(spec) of the sweep the shard belongs to, so
 * partials from different sweeps can never silently merge.
 *
 * mergePartials() reassembles K partials into the plain JSONL body a
 * `threads=1` run of the whole spec would have written — byte
 * identical — after verifying fingerprints match, no index appears
 * twice, and every index in [0, totalPoints) is covered.
 */

#ifndef PCMAP_SWEEP_DIST_PARTIAL_IO_H
#define PCMAP_SWEEP_DIST_PARTIAL_IO_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep/dist/shard_plan.h"

namespace pcmap::sweep::dist {

/** The metadata line at the top of every shard partial. */
struct PartialHeader
{
    std::uint64_t fingerprint = 0;
    unsigned shard = 1;
    unsigned shards = 1;
    std::size_t indexBegin = 0; ///< First index of the slice.
    std::size_t indexEnd = 0;   ///< One past the last index.
    std::size_t totalPoints = 0;

    ShardSlice slice() const { return {indexBegin, indexEnd}; }
};

/** Serialize a header as its JSON line (no trailing newline). */
std::string headerLine(const PartialHeader &h);

/** One row of a partial: its identity plus the verbatim line. */
struct PartialRow
{
    std::size_t index = 0;
    bool ok = false;
    std::string line; ///< The exact toJsonLine() bytes.
};

/** A parsed partial file. */
struct Partial
{
    std::string path = "<memory>"; ///< Provenance for error messages.
    PartialHeader header;
    std::vector<PartialRow> rows; ///< Ascending index order.
};

/**
 * Parse partial-file @p content.  Returns false (with a description
 * in @p err) when the header is missing/malformed, a row lacks an
 * index, a row's index falls outside the header's slice, or rows are
 * not in strictly ascending index order.  Rows may cover only part of
 * the slice — that is exactly the crash/resume case.
 */
bool parsePartial(const std::string &content, Partial &out,
                  std::string &err);

/** Read + parse a partial from disk; fatal() on any problem. */
Partial loadPartial(const std::string &path);

/** Compose a partial file: header line + rows, newline-terminated. */
std::string composePartial(const PartialHeader &h,
                           const std::vector<std::string> &row_lines);

/** What a successful merge produced. */
struct MergeOutcome
{
    /** Plain JSONL body, index order — what writeJsonl() would emit. */
    std::string body;
    std::size_t rows = 0;
    std::size_t failedRows = 0;
};

/**
 * Merge K partials (any K, any order) into the full report body.
 * Returns false with @p err describing the first problem found:
 * mismatched fingerprints/totalPoints, duplicate indices, or
 * incomplete coverage (listing the missing indices).
 */
bool mergePartials(const std::vector<Partial> &parts,
                   MergeOutcome &out, std::string &err);

} // namespace pcmap::sweep::dist

#endif // PCMAP_SWEEP_DIST_PARTIAL_IO_H
