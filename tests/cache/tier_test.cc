/**
 * @file
 * Tests for the timed DRAM cache tier: the sweep-axis grammar and
 * TierConfig validation, hit/miss timing and MSHR semantics against a
 * scriptable downstream port, write-back buffering and back-pressure,
 * parked-victim coherence, thread-count determinism of tier-enabled
 * sweeps, observability neutrality, and the LRU-vs-MAC PCM
 * write-traffic difference through a full System run.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/tier.h"
#include "core/stat_export.h"
#include "core/system.h"
#include "sim/log.h"
#include "sweep/sweep_io.h"
#include "sweep/sweep_runner.h"
#include "workload/mixes.h"

namespace pcmap {
namespace {

using cache::CacheTier;
using cache::ReplPolicy;
using cache::TierConfig;

CacheLine
patternLine(std::uint64_t seed)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; ++i)
        l.w[i] = seed * 100 + i;
    return l;
}

TEST(TierAxis, ParseAndRoundtrip)
{
    const TierConfig none = cache::tierConfigFromString("none");
    EXPECT_FALSE(none.enabled());
    EXPECT_EQ(cache::tierConfigToString(none), "none");

    const TierConfig t = cache::tierConfigFromString("dram:256K:4:mac");
    EXPECT_TRUE(t.enabled());
    EXPECT_EQ(t.sizeBytes, 256ull << 10);
    EXPECT_EQ(t.ways, 4u);
    EXPECT_EQ(t.repl, ReplPolicy::Mac);
    EXPECT_EQ(cache::tierConfigToString(t), "dram:262144:4:mac");

    EXPECT_EQ(cache::tierConfigFromString("dram:1M:8:lru").sizeBytes,
              1ull << 20);
    EXPECT_EQ(cache::tierConfigFromString("dram:1G:8:lru").sizeBytes,
              1ull << 30);
    // The canonical (suffix-free) form must parse back to itself.
    const TierConfig rt =
        cache::tierConfigFromString(cache::tierConfigToString(t));
    EXPECT_EQ(rt.sizeBytes, t.sizeBytes);
    EXPECT_EQ(rt.ways, t.ways);
    EXPECT_EQ(rt.repl, t.repl);
}

TEST(TierAxis, RejectsMalformedStrings)
{
    ScopedErrorTrap trap;
    EXPECT_THROW(cache::tierConfigFromString("dram"), SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:1M:8"), SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:1M:8:lru:x"),
                 SimError);
    EXPECT_THROW(cache::tierConfigFromString("sram:1M:8:lru"), SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:0:8:lru"), SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:1T:8:lru"), SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:1M:zero:lru"),
                 SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:1M:0:lru"), SimError);
    EXPECT_THROW(cache::tierConfigFromString("dram:1M:8:plru"),
                 SimError);
}

TEST(TierConfigValidate, RejectsUnusableShapes)
{
    ScopedErrorTrap trap;

    TierConfig disabled;
    EXPECT_THROW(disabled.validate(), SimError);

    TierConfig no_mshr;
    no_mshr.sizeBytes = 1ull << 20;
    no_mshr.mshrCap = 0;
    EXPECT_THROW(no_mshr.validate(), SimError);

    TierConfig no_batch;
    no_batch.sizeBytes = 1ull << 20;
    no_batch.writebackBatch = 0;
    EXPECT_THROW(no_batch.validate(), SimError);

    TierConfig shallow_buffer;
    shallow_buffer.sizeBytes = 1ull << 20;
    shallow_buffer.writebackBatch = 8;
    shallow_buffer.wbBufferCap = 4;
    EXPECT_THROW(shallow_buffer.validate(), SimError);

    TierConfig ok;
    ok.sizeBytes = 1ull << 20;
    EXPECT_NO_THROW(ok.validate());
}

/**
 * A scriptable PCM-side stand-in: records every enqueue, can refuse
 * reads/writes on demand, and lets the test deliver fill responses
 * and fire the retry seam by hand.
 */
class FakePort : public MemoryPort
{
  public:
    bool
    enqueueRead(const MemRequest &req, ReadCallback cb) override
    {
        if (!acceptReads)
            return false;
        reads.emplace_back(req, std::move(cb));
        return true;
    }

    bool
    enqueueWrite(const MemRequest &req) override
    {
        if (!acceptWrites)
            return false;
        writes.push_back(req);
        return true;
    }

    void setRetryCallback(RetryCallback cb) override { retry = std::move(cb); }
    void setVerifyCallback(VerifyCallback cb) override { verify = std::move(cb); }

    /** Complete pending read @p i with @p data at @p when. */
    void
    deliver(std::size_t i, const CacheLine &data, Tick when,
            bool speculative = false)
    {
        ReadResponse resp;
        resp.id = reads[i].first.id;
        resp.addr = reads[i].first.addr;
        resp.coreId = reads[i].first.coreId;
        resp.completionTick = when;
        resp.data = data;
        resp.speculative = speculative;
        auto cb = reads[i].second;
        cb(resp);
    }

    bool acceptReads = true;
    bool acceptWrites = true;
    std::vector<std::pair<MemRequest, ReadCallback>> reads;
    std::vector<MemRequest> writes;
    RetryCallback retry;
    VerifyCallback verify;
};

MemRequest
readReq(ReqId id, std::uint64_t line)
{
    MemRequest r;
    r.id = id;
    r.type = ReqType::Read;
    r.addr = line * kLineBytes;
    return r;
}

MemRequest
writeReq(ReqId id, std::uint64_t line, const CacheLine &data)
{
    MemRequest r;
    r.id = id;
    r.type = ReqType::Write;
    r.addr = line * kLineBytes;
    r.data = data;
    return r;
}

TEST(TierTiming, ReadHitDeliversExactlyHitTicksLater)
{
    EventQueue eq;
    FakePort pcm;
    TierConfig cfg;
    cfg.sizeBytes = 64 * kLineBytes;
    cfg.ways = 4;
    CacheTier tier(cfg, eq, pcm);

    // A full-line write installs without a fetch (write-allocate,
    // no-fetch), so the following read is a pure DRAM hit.
    ASSERT_TRUE(tier.enqueueWrite(writeReq(1, 5, patternLine(5))));
    EXPECT_TRUE(pcm.reads.empty());

    std::vector<ReadResponse> got;
    ASSERT_TRUE(tier.enqueueRead(
        readReq(2, 5), [&](const ReadResponse &r) { got.push_back(r); }));
    eq.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].completionTick, cfg.hitTicks);
    EXPECT_EQ(got[0].data, patternLine(5));
    EXPECT_EQ(tier.counters().readHits, 1u);
    EXPECT_EQ(tier.counters().writeMisses, 1u);
    // Write-allocate installs are not PCM fetches.
    EXPECT_EQ(tier.counters().fills, 0u);
}

TEST(TierTiming, ReadMissFetchesOnceAndMergesSecondaries)
{
    EventQueue eq;
    FakePort pcm;
    TierConfig cfg;
    cfg.sizeBytes = 64 * kLineBytes;
    CacheTier tier(cfg, eq, pcm);

    std::vector<ReadResponse> got;
    const auto sink = [&](const ReadResponse &r) { got.push_back(r); };
    ASSERT_TRUE(tier.enqueueRead(readReq(1, 9), sink));
    ASSERT_TRUE(tier.enqueueRead(readReq(2, 9), sink));
    ASSERT_EQ(pcm.reads.size(), 1u) << "one fetch per distinct line";
    EXPECT_EQ(tier.counters().mshrMerges, 1u);
    EXPECT_EQ(tier.mshrInUse(), 1u);

    pcm.deliver(0, patternLine(9), /*when=*/123'000);
    ASSERT_EQ(got.size(), 2u) << "the fill fans out to merged waiters";
    for (const ReadResponse &r : got) {
        EXPECT_EQ(r.completionTick, 123'000u);
        EXPECT_EQ(r.data, patternLine(9));
    }
    EXPECT_EQ(tier.mshrInUse(), 0u);
    EXPECT_EQ(tier.counters().fills, 1u);

    // Now resident: the next read is a hit and fetches nothing.
    got.clear();
    ASSERT_TRUE(tier.enqueueRead(readReq(3, 9), sink));
    eq.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(pcm.reads.size(), 1u);
    EXPECT_EQ(tier.counters().readHits, 1u);
}

TEST(TierTiming, SpeculativeFillFansVerifyOutToEveryWaiter)
{
    EventQueue eq;
    FakePort pcm;
    TierConfig cfg;
    cfg.sizeBytes = 64 * kLineBytes;
    CacheTier tier(cfg, eq, pcm);

    std::vector<std::pair<ReqId, bool>> verdicts;
    tier.setVerifyCallback([&](ReqId id, unsigned, bool fault) {
        verdicts.emplace_back(id, fault);
    });

    std::vector<ReadResponse> got;
    const auto sink = [&](const ReadResponse &r) { got.push_back(r); };
    ASSERT_TRUE(tier.enqueueRead(readReq(11, 4), sink));
    ASSERT_TRUE(tier.enqueueRead(readReq(12, 4), sink));
    pcm.deliver(0, patternLine(4), 50'000, /*speculative=*/true);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_TRUE(got[0].speculative);
    EXPECT_TRUE(got[1].speculative);

    // The PCM side resolves the deferred SECDED check under the
    // *fetch* id (the first waiter's); both merged readers must hear.
    ASSERT_TRUE(pcm.verify);
    pcm.verify(11, 0, /*fault=*/false);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_EQ(verdicts[0].first, 11u);
    EXPECT_EQ(verdicts[1].first, 12u);
}

TEST(TierBackpressure, FullMshrFileRefusesThenRetries)
{
    EventQueue eq;
    FakePort pcm;
    TierConfig cfg;
    cfg.sizeBytes = 64 * kLineBytes;
    cfg.mshrCap = 1;
    CacheTier tier(cfg, eq, pcm);

    bool retried = false;
    tier.setRetryCallback([&] { retried = true; });

    std::vector<ReadResponse> got;
    const auto sink = [&](const ReadResponse &r) { got.push_back(r); };
    ASSERT_TRUE(tier.enqueueRead(readReq(1, 0), sink));
    EXPECT_FALSE(tier.enqueueRead(readReq(2, 1), sink))
        << "a second distinct-line miss must be refused at mshrCap=1";
    EXPECT_EQ(tier.counters().mshrRejects, 1u);
    EXPECT_FALSE(retried);

    // Completing the outstanding fill frees the slot and must wake
    // the blocked source through the retry seam.
    pcm.deliver(0, patternLine(0), 90'000);
    EXPECT_TRUE(retried);
    EXPECT_TRUE(tier.enqueueRead(readReq(2, 1), sink));
    EXPECT_EQ(tier.mshrInUse(), 1u);
}

TEST(TierBackpressure, WritebackBufferStallsAndDrainsOnRetry)
{
    EventQueue eq;
    FakePort pcm;
    pcm.acceptWrites = false; // PCM write queue full for now
    TierConfig cfg;
    cfg.sizeBytes = kLineBytes; // 1 set x 1 way: every line collides
    cfg.ways = 1;
    cfg.writebackBatch = 1;
    cfg.wbBufferCap = 1;
    CacheTier tier(cfg, eq, pcm);

    bool retried = false;
    tier.setRetryCallback([&] { retried = true; });

    // Install line 0 dirty, then evict it with line 1: the victim
    // parks, its drain attempt stalls on the refused enqueue.
    ASSERT_TRUE(tier.enqueueWrite(writeReq(1, 0, patternLine(0))));
    ASSERT_TRUE(tier.enqueueWrite(writeReq(2, 1, patternLine(1))));
    EXPECT_EQ(tier.wbBuffered(), 1u);
    EXPECT_TRUE(pcm.writes.empty());

    // Buffer full: a third write (and a read miss, which must reserve
    // fill headroom) are refused.
    EXPECT_FALSE(tier.enqueueWrite(writeReq(3, 2, patternLine(2))));
    std::vector<ReadResponse> got;
    EXPECT_FALSE(tier.enqueueRead(
        readReq(4, 3), [&](const ReadResponse &r) { got.push_back(r); }));
    EXPECT_EQ(tier.counters().wbRejects, 2u);

    // A parked victim still owns the freshest copy: reads and writes
    // to it must be served from the buffer, not refused.
    std::vector<ReadResponse> parked;
    ASSERT_TRUE(tier.enqueueRead(
        readReq(5, 0),
        [&](const ReadResponse &r) { parked.push_back(r); }));
    eq.run();
    ASSERT_EQ(parked.size(), 1u);
    EXPECT_EQ(parked[0].data, patternLine(0));

    // PCM frees space: the downstream retry finishes the drain and
    // wakes the blocked source.
    pcm.acceptWrites = true;
    ASSERT_TRUE(pcm.retry);
    pcm.retry();
    EXPECT_TRUE(retried);
    ASSERT_EQ(pcm.writes.size(), 1u);
    EXPECT_EQ(pcm.writes[0].addr, 0u);
    EXPECT_EQ(pcm.writes[0].data, patternLine(0));
    EXPECT_EQ(tier.wbBuffered(), 0u);
    EXPECT_EQ(tier.counters().writebacks, 1u);
    EXPECT_TRUE(tier.enqueueWrite(writeReq(3, 2, patternLine(2))));
}

TEST(TierBackpressure, FlushDirtyPushesEveryResidentDirtyLine)
{
    EventQueue eq;
    FakePort pcm;
    TierConfig cfg;
    cfg.sizeBytes = 64 * kLineBytes;
    cfg.writebackBatch = 64; // no implicit drain during the run
    cfg.wbBufferCap = 64;
    CacheTier tier(cfg, eq, pcm);

    for (std::uint64_t line = 0; line < 6; ++line)
        ASSERT_TRUE(tier.enqueueWrite(writeReq(line, line,
                                               patternLine(line))));
    EXPECT_TRUE(pcm.writes.empty());
    tier.flushDirty();
    EXPECT_EQ(pcm.writes.size(), 6u);
    EXPECT_EQ(tier.counters().writebacks, 6u);
}

/** Run @p cfg on MP1 and return (report text, flat stat listing). */
std::pair<std::string, stats::FlatStats>
runAndExport(const SystemConfig &cfg)
{
    System sys(cfg, workload::makeWorkload("MP1", cfg.numCores));
    const SystemResults r = sys.run();
    std::ostringstream os;
    dumpResults(r, os);
    SystemStatExport exporter(sys.memory());
    exporter.refresh();
    return {os.str(), exporter.root().flattened()};
}

TEST(TierObs, TracingDoesNotPerturbResults)
{
    SystemConfig off;
    off.mode = SystemMode::RWoW_RDE;
    off.numCores = 4;
    off.instructionsPerCore = 20'000;
    off.seed = 3;
    off.tier = cache::tierConfigFromString("dram:64K:4:lru");

    SystemConfig on = off;
    on.obs.trace = true;
    on.obs.traceCapacity = 1u << 12;

    const auto [off_text, off_stats] = runAndExport(off);
    const auto [on_text, on_stats] = runAndExport(on);
    EXPECT_EQ(off_text, on_text);
    EXPECT_EQ(off_stats, on_stats);
}

TEST(TierDeterminism, SweepJsonlIdenticalAcrossThreadCounts)
{
    sweep::SweepSpec spec;
    spec.workloads = {"MP1"};
    spec.seeds = {1};
    spec.modes = {SystemMode::Baseline, SystemMode::RWoW_RDE};
    spec.configs[0].base.instructionsPerCore = 15'000;
    spec.configs[0].base.tier =
        cache::tierConfigFromString("dram:64K:4:mac");

    sweep::SweepRunner::Options one;
    one.threads = 1;
    sweep::SweepRunner::Options eight;
    eight.threads = 8;
    const std::string a = sweep::toJsonl(sweep::SweepRunner(one).run(spec));
    const std::string b =
        sweep::toJsonl(sweep::SweepRunner(eight).run(spec));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(TierPolicy, MacKeepsDirtyLinesAndCutsPcmWriteTraffic)
{
    // The whole point of the MAC-style policy: preferring clean
    // victims keeps dirty lines resident longer, coalescing more
    // stores per write-back, so the same run emits fewer PCM writes.
    SystemConfig lru;
    lru.mode = SystemMode::Baseline;
    lru.numCores = 4;
    lru.instructionsPerCore = 20'000;
    lru.seed = 1;
    lru.tier = cache::tierConfigFromString("dram:64K:4:lru");

    SystemConfig mac = lru;
    mac.tier.repl = ReplPolicy::Mac;

    System lru_sys(lru, workload::makeWorkload("MP1", lru.numCores));
    const SystemResults lru_res = lru_sys.run();
    System mac_sys(mac, workload::makeWorkload("MP1", mac.numCores));
    const SystemResults mac_res = mac_sys.run();

    ASSERT_GT(lru_res.cacheHits + lru_res.cacheMisses, 0u);
    ASSERT_GT(mac_res.cacheHits + mac_res.cacheMisses, 0u);
    EXPECT_GT(lru_res.writesCompleted, 0u);
    EXPECT_LT(mac_res.writesCompleted, lru_res.writesCompleted)
        << "MAC must reach PCM with fewer write-backs than LRU";
}

} // namespace
} // namespace pcmap
