# Empty dependencies file for pcmap_ecc.
# This may be replaced when dependencies are built.
