#include "core/layout.h"

#include "sim/log.h"

namespace pcmap {

ChipLayout::ChipLayout(RotationMode mode, bool has_pcc)
    : rotation(mode), pccPresent(has_pcc)
{
    if (rotation == RotationMode::DataEcc && !pccPresent) {
        pcmap_panic("DataEcc rotation requires the 10-chip PCMap rank");
    }
}

} // namespace pcmap
