/**
 * @file
 * A typed key/value configuration store.
 *
 * Used by the example programs and benchmark harnesses to override
 * simulation parameters from the command line ("key=value" tokens)
 * without every binary growing its own flag parser.  Lookups with a
 * default never fail; lookups without a default call fatal() when the
 * key is missing, because a missing required key is a user error.
 */

#ifndef PCMAP_SIM_CONFIG_H
#define PCMAP_SIM_CONFIG_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pcmap {

/** String-backed configuration dictionary with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Parse "key=value" tokens; unrecognized tokens are fatal(). */
    static Config fromArgs(int argc, char **argv);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** True when @p key has been set. */
    bool has(const std::string &key) const;

    /** Typed getters with a default for absent keys. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** Required getters; fatal() when the key is missing or malformed. */
    std::string requireString(const std::string &key) const;
    std::int64_t requireInt(const std::string &key) const;
    double requireDouble(const std::string &key) const;

    /** All keys in sorted order (for help/dump output). */
    std::vector<std::string> keys() const;

  private:
    std::optional<std::string> raw(const std::string &key) const;

    std::map<std::string, std::string> values;
};

/**
 * The candidate most similar to @p word by edit distance
 * (case-insensitive Levenshtein), for "unknown key, did you mean X?"
 * diagnostics.  Empty when no candidate comes close — the distance
 * must be at most half the word's length (minimum 2) to suggest, so a
 * typo gets a pointer but an unrelated word doesn't get a misleading
 * one.
 */
std::string closestMatch(const std::string &word,
                         const std::vector<std::string> &candidates);

/**
 * fatal() for an unrecognized enumerated value or key: names the
 * offender, adds a "did you mean 'X'?" clause when closestMatch()
 * finds a candidate near @p value, and closes with a parenthesised
 * @p known_summary telling the user where the valid spellings live
 * (e.g. "known: baseline, row, ..." or "help=1 lists every key").
 */
[[noreturn]] void fatalUnknown(const char *what, const std::string &value,
                               const std::vector<std::string> &candidates,
                               const std::string &known_summary);

} // namespace pcmap

#endif // PCMAP_SIM_CONFIG_H
