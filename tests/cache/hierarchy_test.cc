/**
 * @file
 * Tests for the cache-hierarchy front end: PCM traffic generation,
 * dirty-word condensation, silent-store behaviour, and flush.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.h"
#include "cache/raw_stream.h"

namespace pcmap::cache {
namespace {

/** Scripted raw stream. */
class ScriptedRaw : public RawAccessSource
{
  public:
    bool
    next(RawAccess &access) override
    {
        if (pos >= script.size())
            return false;
        access = script[pos++];
        return true;
    }

    std::vector<RawAccess> script;
    std::size_t pos = 0;
};

RawAccess
load(std::uint64_t addr, std::uint64_t gap = 0)
{
    RawAccess a;
    a.addr = addr;
    a.gapInsts = gap;
    return a;
}

RawAccess
store(std::uint64_t addr, std::uint64_t value, bool silent = false)
{
    RawAccess a;
    a.isStore = true;
    a.addr = addr;
    a.value = value;
    a.silent = silent;
    return a;
}

HierarchyConfig
tinyHierarchy()
{
    HierarchyConfig cfg;
    cfg.l2 = CacheConfig{4 * kLineBytes, 1, true};       // 4 lines
    cfg.dramCache = CacheConfig{16 * kLineBytes, 2, true}; // 16 lines
    return cfg;
}

TEST(Hierarchy, ColdLoadEmitsPcmRead)
{
    ScriptedRaw raw;
    raw.script = {load(0, 7)};
    BackingStore store;
    HierarchySource h(raw, store, tinyHierarchy());
    MemOp op;
    ASSERT_TRUE(h.next(op));
    EXPECT_FALSE(op.isWrite);
    EXPECT_EQ(op.addr, 0u);
    EXPECT_EQ(op.gapInsts, 7u);
    EXPECT_FALSE(h.next(op)); // stream exhausted, all cached
}

TEST(Hierarchy, RepeatedAccessesHitInCache)
{
    ScriptedRaw raw;
    for (int i = 0; i < 20; ++i)
        raw.script.push_back(load(64));
    BackingStore store;
    HierarchySource h(raw, store, tinyHierarchy());
    MemOp op;
    ASSERT_TRUE(h.next(op)); // only the cold miss
    EXPECT_FALSE(h.next(op));
    EXPECT_EQ(h.l2().stats().hits, 19u);
}

TEST(Hierarchy, StoresCondenseIntoFewDirtyWords)
{
    // Write words 2 and 5 of one line many times; after flush the
    // PCM write-back carries the aggregated line once.
    ScriptedRaw raw;
    for (int i = 0; i < 10; ++i) {
        raw.script.push_back(store(0 * 64 + 2 * 8, 100 + i));
        raw.script.push_back(store(0 * 64 + 5 * 8, 200 + i));
    }
    BackingStore store;
    HierarchySource h(raw, store, tinyHierarchy());
    MemOp op;
    ASSERT_TRUE(h.next(op)); // cold fill read
    EXPECT_FALSE(op.isWrite);
    EXPECT_FALSE(h.next(op));
    h.flushAll();
    ASSERT_TRUE(h.next(op));
    EXPECT_TRUE(op.isWrite);
    const WordMask essential =
        store.essentialWords(op.addr / kLineBytes, op.data);
    EXPECT_EQ(essential, WordMask{(1u << 2) | (1u << 5)});
    EXPECT_EQ(op.data.w[2], 109u);
    EXPECT_EQ(op.data.w[5], 209u);
}

TEST(Hierarchy, SilentStoreProducesNoEssentialWords)
{
    ScriptedRaw raw;
    raw.script = {store(128, 0, /*silent=*/true)};
    BackingStore store;
    CacheLine preset;
    preset.w[0] = 0xABCD;
    store.writeLine(2, preset);
    HierarchySource h(raw, store, tinyHierarchy());
    MemOp op;
    ASSERT_TRUE(h.next(op)); // the fill read
    EXPECT_FALSE(h.next(op));
    h.flushAll();
    ASSERT_TRUE(h.next(op)); // dirty-bit write-back...
    EXPECT_TRUE(op.isWrite);
    // ...which the differential write finds fully redundant.
    EXPECT_EQ(store.essentialWords(op.addr / kLineBytes, op.data), 0u);
}

TEST(Hierarchy, CapacityEvictionsReachPcm)
{
    // Touch far more lines than the hierarchy holds, storing into
    // each; evictions must appear as PCM writes.
    ScriptedRaw raw;
    for (std::uint64_t line = 0; line < 64; ++line)
        raw.script.push_back(store(line * kLineBytes, line + 1));
    BackingStore store;
    HierarchySource h(raw, store, tinyHierarchy());
    MemOp op;
    unsigned reads = 0;
    unsigned writes = 0;
    while (h.next(op))
        (op.isWrite ? writes : reads)++;
    EXPECT_EQ(reads, 64u);
    EXPECT_GT(writes, 30u); // 16-line DRAM cache must spill
}

TEST(Hierarchy, GapsAccumulateAcrossFilteredAccesses)
{
    ScriptedRaw raw;
    raw.script = {load(0, 10), load(0, 20), load(0, 30),
                  load(4096, 40)};
    BackingStore store;
    HierarchySource h(raw, store, tinyHierarchy());
    MemOp op;
    ASSERT_TRUE(h.next(op));
    EXPECT_EQ(op.gapInsts, 10u); // first cold miss
    ASSERT_TRUE(h.next(op));
    // Hits for 20/30 accumulate into the next PCM-level op.
    EXPECT_EQ(op.gapInsts, 90u);
}

TEST(Hierarchy, EndToEndDirtyWordShape)
{
    // A realistic synthetic raw stream must produce mostly-few-dirty-
    // word write-backs after aggregation (the Figure 2 shape).
    RawStreamConfig rcfg;
    rcfg.accesses = 60'000;
    rcfg.footprintBytes = 1u << 20;
    rcfg.seed = 5;
    SyntheticRawStream raw(rcfg);
    BackingStore store;
    HierarchyConfig hcfg;
    hcfg.l2 = CacheConfig{64 * kLineBytes, 4, true};
    hcfg.dramCache = CacheConfig{1024 * kLineBytes, 8, true};
    HierarchySource h(raw, store, hcfg);

    MemOp op;
    std::uint64_t writes = 0;
    std::uint64_t few_words = 0;
    while (h.next(op)) {
        if (!op.isWrite)
            continue;
        ++writes;
        const unsigned n = wordCount(
            store.essentialWords(op.addr / kLineBytes, op.data));
        few_words += n <= 4 ? 1 : 0;
        store.writeWords(op.addr / kLineBytes, op.data,
                         store.essentialWords(op.addr / kLineBytes,
                                              op.data));
    }
    ASSERT_GT(writes, 500u);
    EXPECT_GT(static_cast<double>(few_words) /
                  static_cast<double>(writes),
              0.5);
}

} // namespace
} // namespace pcmap::cache
