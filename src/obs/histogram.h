/**
 * @file
 * HDR-style log-bucketed histogram for latency-class quantities.
 *
 * Values up to 2^kSubBits are counted exactly; above that, each
 * power-of-two octave is split into 2^kSubBits sub-buckets, bounding
 * the relative quantization error of any reported percentile by
 * 2^-kSubBits (~3%).  Everything is plain integer arithmetic over a
 * fixed-size array: sampling is a handful of ALU ops and never
 * allocates, so the histogram is cheap enough to live unconditionally
 * in ControllerStats (sampling cost is paid whether or not tracing is
 * enabled; the perf-smoke floor guards it).
 *
 * Header-only with no dependencies beyond <cstdint> so that core code
 * can embed histograms without linking pcmap_obs.
 */

#ifndef PCMAP_OBS_HISTOGRAM_H
#define PCMAP_OBS_HISTOGRAM_H

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace pcmap::obs {

/** Log-bucketed histogram of non-negative 64-bit samples. */
class LogHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits buckets per octave. */
    static constexpr unsigned kSubBits = 5;
    static constexpr unsigned kSubCount = 1u << kSubBits;
    /** Octave 0 (exact) + one group per leading-bit position above. */
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(64 - kSubBits + 1) * kSubCount;

    void
    sample(std::uint64_t value)
    {
        ++counts[bucketIndex(value)];
        ++total;
        sum += static_cast<double>(value);
        if (value > maxValue)
            maxValue = value;
        if (value < minValue)
            minValue = value;
    }

    std::uint64_t samples() const { return total; }
    std::uint64_t maxSeen() const { return total ? maxValue : 0; }
    std::uint64_t minSeen() const { return total ? minValue : 0; }

    double
    mean() const
    {
        return total ? sum / static_cast<double>(total) : 0.0;
    }

    /**
     * Value at or below which @p pct percent of samples fall,
     * reported as the containing bucket's upper bound (clamped to the
     * exact observed min/max so p0/p100 are exact).
     */
    std::uint64_t
    percentile(double pct) const
    {
        if (total == 0)
            return 0;
        const double want = pct / 100.0 * static_cast<double>(total);
        auto rank = static_cast<std::uint64_t>(std::ceil(want));
        if (rank < 1)
            rank = 1;
        if (rank > total)
            rank = total;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < kNumBuckets; ++i) {
            cum += counts[i];
            if (cum >= rank) {
                const std::uint64_t ub = bucketUpperBound(i);
                if (ub > maxValue)
                    return maxValue;
                if (ub < minValue)
                    return minValue;
                return ub;
            }
        }
        return maxValue;
    }

    /** The five-quantile digest exported through the stats tree. */
    struct Summary
    {
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        double p999 = 0.0;
        double max = 0.0;
        double mean = 0.0;
        std::uint64_t samples = 0;
    };

    Summary
    summary() const
    {
        Summary s;
        s.samples = total;
        if (total == 0)
            return s;
        s.p50 = static_cast<double>(percentile(50.0));
        s.p90 = static_cast<double>(percentile(90.0));
        s.p99 = static_cast<double>(percentile(99.0));
        s.p999 = static_cast<double>(percentile(99.9));
        s.max = static_cast<double>(maxValue);
        s.mean = mean();
        return s;
    }

    void
    merge(const LogHistogram &other)
    {
        for (std::size_t i = 0; i < kNumBuckets; ++i)
            counts[i] += other.counts[i];
        total += other.total;
        sum += other.sum;
        if (other.total) {
            if (other.maxValue > maxValue || total == other.total)
                maxValue = other.maxValue;
            if (other.minValue < minValue)
                minValue = other.minValue;
        }
    }

    void
    reset()
    {
        counts.fill(0);
        total = 0;
        sum = 0.0;
        maxValue = 0;
        minValue = ~0ull;
    }

    // --- Bucket geometry (exposed for tests and iteration) ---

    static std::size_t
    bucketIndex(std::uint64_t value)
    {
        if (value < kSubCount)
            return static_cast<std::size_t>(value);
        const unsigned shift = std::bit_width(value) - kSubBits - 1;
        return static_cast<std::size_t>(
            (static_cast<std::uint64_t>(shift) + 1) * kSubCount +
            ((value >> shift) - kSubCount));
    }

    /** Largest value mapping to bucket @p index. */
    static std::uint64_t
    bucketUpperBound(std::size_t index)
    {
        if (index < kSubCount)
            return index;
        const unsigned shift =
            static_cast<unsigned>(index / kSubCount) - 1;
        const std::uint64_t sub = index % kSubCount;
        return ((kSubCount + sub) << shift) + ((1ull << shift) - 1);
    }

    std::uint64_t bucketCount(std::size_t i) const { return counts[i]; }

  private:
    std::array<std::uint64_t, kNumBuckets> counts{};
    std::uint64_t total = 0;
    double sum = 0.0;
    std::uint64_t maxValue = 0;
    std::uint64_t minValue = ~0ull;
};

} // namespace pcmap::obs

#endif // PCMAP_OBS_HISTOGRAM_H
