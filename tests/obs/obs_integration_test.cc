/**
 * @file
 * End-to-end observability contracts:
 *
 *  - enabling tracing + epoch sampling never changes simulation
 *    results (the epoch sampler is cancelled before it can extend
 *    simulated time);
 *  - the final timeline sample restates the run's aggregate results
 *    exactly — IRLP mean/max, RoW/WoW rates and write throughput
 *    recompute bit-for-bit;
 *  - timeline JSONL round-trips every value exactly;
 *  - per-point sweep obs files are byte-identical at any thread
 *    count (the determinism contract extended to trace artifacts).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/system.h"
#include "obs/json_mini.h"
#include "obs/observer.h"
#include "sweep/dist/atomic_file.h"
#include "sweep/sweep_runner.h"
#include "workload/mixes.h"

namespace pcmap {
namespace {

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.mode = SystemMode::RWoW_RDE;
    cfg.instructionsPerCore = 6000;
    return cfg;
}

std::unique_ptr<System>
makeSystem(const SystemConfig &cfg)
{
    return std::make_unique<System>(
        cfg, workload::makeWorkload("streamcluster", cfg.numCores));
}

TEST(ObsIntegrationTest, ObservabilityNeverChangesResults)
{
    SystemConfig plain = baseConfig();
    System a(plain, workload::makeWorkload("streamcluster",
                                           plain.numCores));
    const SystemResults off = a.run();

    SystemConfig traced = baseConfig();
    traced.obs.trace = true;
    traced.obs.epochTicks = 1'000'000; // 1 us: several epochs
    System b(traced, workload::makeWorkload("streamcluster",
                                            traced.numCores));
    const SystemResults on = b.run();

    // Bitwise-identical results: the sampler reads state but never
    // advances time.  (Host event counters legitimately differ — the
    // epoch events themselves execute.)
    EXPECT_EQ(off.simTicks, on.simTicks);
    EXPECT_EQ(off.readsCompleted, on.readsCompleted);
    EXPECT_EQ(off.writesCompleted, on.writesCompleted);
    EXPECT_EQ(off.rowReads, on.rowReads);
    EXPECT_EQ(off.deferredEccReads, on.deferredEccReads);
    EXPECT_EQ(off.wowGroups, on.wowGroups);
    EXPECT_EQ(off.wowMergedWrites, on.wowMergedWrites);
    EXPECT_EQ(off.rollbacks, on.rollbacks);
    EXPECT_EQ(off.ipcSum, on.ipcSum);
    EXPECT_EQ(off.avgReadLatencyNs, on.avgReadLatencyNs);
    EXPECT_EQ(off.writeThroughput, on.writeThroughput);
    EXPECT_EQ(off.irlpMean, on.irlpMean);
    EXPECT_EQ(off.irlpMax, on.irlpMax);
    EXPECT_EQ(off.energyUj, on.energyUj);
    EXPECT_EQ(off.instRetired, on.instRetired);
}

TEST(ObsIntegrationTest, ObservabilityIsInvariantForEveryDeviceOrg)
{
    // The multi-round write path (round chaining, boundary
    // pause/cancel) schedules its own continuation events; the epoch
    // sampler must stay invisible to it for every organization, with
    // cancellation enabled so the round-boundary abort path runs.
    // Two configs per org: the RWoW-RDE preset covers the fine-grained
    // round-chaining path, the Baseline + write-cancellation config
    // covers the coarse round-boundary abort path (cancellation only
    // exists on the conventional-DIMM baseline).
    std::vector<SystemConfig> bases(2, baseConfig());
    bases[1].mode = SystemMode::Baseline;
    bases[1].enableWriteCancellation = true;
    for (const SystemConfig &base : bases)
    for (const DeviceOrg org : kAllOrgs) {
        SystemConfig plain = base;
        plain.timing = PcmTiming::forOrg(org);
        System a(plain, workload::makeWorkload("streamcluster",
                                               plain.numCores));
        const SystemResults off = a.run();

        SystemConfig traced = plain;
        traced.obs.trace = true;
        traced.obs.epochTicks = 1'000'000;
        System b(traced, workload::makeWorkload("streamcluster",
                                                traced.numCores));
        const SystemResults on = b.run();

        EXPECT_EQ(off.simTicks, on.simTicks) << deviceOrgName(org);
        EXPECT_EQ(off.readsCompleted, on.readsCompleted)
            << deviceOrgName(org);
        EXPECT_EQ(off.writesCompleted, on.writesCompleted)
            << deviceOrgName(org);
        EXPECT_EQ(off.avgReadLatencyNs, on.avgReadLatencyNs)
            << deviceOrgName(org);
        EXPECT_EQ(off.energyUj, on.energyUj) << deviceOrgName(org);
        EXPECT_EQ(off.writeRoundsIssued, on.writeRoundsIssued)
            << deviceOrgName(org);
        EXPECT_EQ(off.writeRoundPauses, on.writeRoundPauses)
            << deviceOrgName(org);
        if (org == DeviceOrg::Slc) {
            EXPECT_EQ(off.writeRoundsIssued, 0u)
                << "single-round orgs must not count rounds";
        } else {
            EXPECT_GT(off.writeRoundsIssued, 0u) << deviceOrgName(org);
        }
    }
}

TEST(ObsIntegrationTest, FinalSampleRestatesAggregateResultsExactly)
{
    SystemConfig cfg = baseConfig();
    cfg.obs.trace = true;
    cfg.obs.epochTicks = 1'000'000;
    const auto sys = makeSystem(cfg);
    const SystemResults res = sys->run();

    ASSERT_NE(sys->observer(), nullptr);
    const obs::Timeline &tl = sys->observer()->timeline();
    ASSERT_GE(tl.size(), 2u) << "expected intermediate + final samples";
    const obs::TimelineSample &last = tl.back();

    // The run must exercise the mechanisms whose rates we recompute.
    ASSERT_GT(res.readsCompleted, 0u);
    ASSERT_GT(res.writesCompleted, 0u);
    ASSERT_GT(res.wowMergedWrites, 0u);
    ASSERT_GT(res.rowReads + res.deferredEccReads, 0u);

    EXPECT_EQ(last.tick, res.simTicks);
    EXPECT_EQ(last.readsCompleted, res.readsCompleted);
    EXPECT_EQ(last.writesCompleted, res.writesCompleted);
    EXPECT_EQ(last.rowReads, res.rowReads);
    EXPECT_EQ(last.deferredEccReads, res.deferredEccReads);
    EXPECT_EQ(last.wowGroups, res.wowGroups);
    EXPECT_EQ(last.wowMergedWrites, res.wowMergedWrites);

    // Exact double equality, not near: the sample sums the same
    // per-channel values in the same order as System::run.
    EXPECT_EQ(last.irlpMean(), res.irlpMean);
    EXPECT_EQ(static_cast<double>(last.irlpMax), res.irlpMax);
    EXPECT_EQ(last.rowHitRate(),
              static_cast<double>(res.rowReads + res.deferredEccReads) /
                  static_cast<double>(res.readsCompleted));
    EXPECT_EQ(last.wowMergeRate(),
              static_cast<double>(res.wowMergedWrites) /
                  static_cast<double>(res.writesCompleted));
    ASSERT_GT(last.irlpWindowTicks, 0.0);
    EXPECT_EQ(static_cast<double>(last.writesCompleted) /
                  (last.irlpWindowTicks * 1e-12),
              res.writeThroughput);

    // All intermediate samples sit on the epoch grid; cumulative
    // counters never decrease.
    for (std::size_t i = 0; i < tl.size(); ++i) {
        const obs::TimelineSample &s = tl.samples()[i];
        if (i + 1 < tl.size())
            EXPECT_EQ(s.tick, (i + 1) * cfg.obs.epochTicks);
        if (i > 0) {
            const obs::TimelineSample &prev = tl.samples()[i - 1];
            EXPECT_GE(s.readsCompleted, prev.readsCompleted);
            EXPECT_GE(s.writesCompleted, prev.writesCompleted);
            EXPECT_GE(s.irlpArea, prev.irlpArea);
            EXPECT_GE(s.irlpMax, prev.irlpMax);
        }
    }
}

TEST(ObsIntegrationTest, TimelineJsonlRoundTripsExactly)
{
    SystemConfig cfg = baseConfig();
    cfg.obs.epochTicks = 1'000'000; // timeline-only: no trace
    const auto sys = makeSystem(cfg);
    sys->run();
    ASSERT_NE(sys->observer(), nullptr);
    EXPECT_EQ(sys->observer()->recorder(), nullptr);
    const obs::Timeline &tl = sys->observer()->timeline();
    ASSERT_FALSE(tl.empty());

    const std::string text = obs::timelineJsonl(tl);
    std::size_t start = 0;
    std::size_t row = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        ASSERT_NE(nl, std::string::npos);
        std::string err;
        const auto parsed =
            obs::parseTimelineLine(text.substr(start, nl - start), &err);
        ASSERT_TRUE(parsed) << "row " << row << ": " << err;
        const obs::TimelineSample &want = tl.samples()[row];
        EXPECT_EQ(parsed->tick, want.tick);
        EXPECT_EQ(parsed->readsCompleted, want.readsCompleted);
        EXPECT_EQ(parsed->writesCompleted, want.writesCompleted);
        EXPECT_EQ(parsed->rowReads, want.rowReads);
        EXPECT_EQ(parsed->deferredEccReads, want.deferredEccReads);
        EXPECT_EQ(parsed->writesEnqueued, want.writesEnqueued);
        EXPECT_EQ(parsed->wowGroups, want.wowGroups);
        EXPECT_EQ(parsed->wowMergedWrites, want.wowMergedWrites);
        // Shortest-round-trip formatting: doubles come back bitwise.
        EXPECT_EQ(parsed->irlpArea, want.irlpArea);
        EXPECT_EQ(parsed->irlpWindowTicks, want.irlpWindowTicks);
        EXPECT_EQ(parsed->irlpMax, want.irlpMax);
        EXPECT_EQ(parsed->readQueueDepth, want.readQueueDepth);
        EXPECT_EQ(parsed->writeQueueDepth, want.writeQueueDepth);
        EXPECT_EQ(parsed->bankBusyFraction, want.bankBusyFraction);
        start = nl + 1;
        ++row;
    }
    EXPECT_EQ(row, tl.size());
}

TEST(ObsIntegrationTest, TraceRecorderProducesValidChromeJson)
{
    SystemConfig cfg = baseConfig();
    cfg.obs.trace = true;
    const auto sys = makeSystem(cfg);
    sys->run();
    ASSERT_NE(sys->observer(), nullptr);
    const obs::TraceRecorder *rec = sys->observer()->recorder();
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->ring().recorded(), 0u);

    std::string err;
    const auto doc = obs::parseJson(obs::chromeTraceJson(rec->ring()),
                                    &err);
    ASSERT_TRUE(doc) << err;
    EXPECT_EQ(doc->get("otherData")->get("recorded")->asU64(),
              rec->ring().recorded());
    EXPECT_EQ(doc->get("traceEvents")->items().size(),
              rec->ring().size());
}

TEST(ObsIntegrationTest, DisabledObsCreatesNoObserver)
{
    SystemConfig cfg = baseConfig();
    const auto sys = makeSystem(cfg);
    EXPECT_EQ(sys->observer(), nullptr);
    sys->run();
    EXPECT_EQ(sys->observer(), nullptr);
}

TEST(ObsIntegrationTest, SweepObsFilesAreThreadCountInvariant)
{
    sweep::SweepSpec spec;
    spec.modes = {SystemMode::Baseline, SystemMode::RWoW_RDE};
    spec.workloads = {"MP1", "streamcluster"};
    spec.configs[0].base.instructionsPerCore = 3000;

    auto runAt = [&spec](unsigned threads, const std::string &prefix) {
        sweep::SweepRunner::Options opts;
        opts.threads = threads;
        opts.obs.trace = true;
        opts.obs.epochTicks = 1'000'000;
        opts.obsPathPrefix = prefix;
        return sweep::SweepRunner(opts).run(spec);
    };
    const std::string p1 = ::testing::TempDir() + "obsdet_t1";
    const std::string p8 = ::testing::TempDir() + "obsdet_t8";
    const sweep::SweepReport r1 = runAt(1, p1);
    const sweep::SweepReport r8 = runAt(8, p8);
    ASSERT_EQ(r1.rows.size(), 4u);
    ASSERT_EQ(r8.rows.size(), 4u);

    for (unsigned i = 0; i < 4; ++i) {
        const std::string point = ".point" + std::to_string(i);
        const std::string t1 =
            sweep::dist::readFile(p1 + point + ".trace.json");
        const std::string t8 =
            sweep::dist::readFile(p8 + point + ".trace.json");
        ASSERT_FALSE(t1.empty());
        EXPECT_EQ(t1, t8) << "trace for point " << i;
        const std::string e1 =
            sweep::dist::readFile(p1 + point + ".timeline.jsonl");
        const std::string e8 =
            sweep::dist::readFile(p8 + point + ".timeline.jsonl");
        ASSERT_FALSE(e1.empty());
        EXPECT_EQ(e1, e8) << "timeline for point " << i;
    }
}

} // namespace
} // namespace pcmap
