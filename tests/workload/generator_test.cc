/**
 * @file
 * Statistical tests of the synthetic generator: the emitted stream
 * must reproduce the profile it was built from — dirty-word
 * histogram, read/write mix, instruction gaps, footprint, offset
 * correlation — and be deterministic per seed.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "mem/backing_store.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace pcmap::workload {
namespace {

/**
 * Drive @p gen for @p n ops, applying writes to @p store (so
 * consecutive dirty masks are measured against up-to-date content),
 * and collect statistics.
 */
struct StreamStats
{
    std::array<std::uint64_t, 9> dirtyHist{};
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double gapSum = 0.0;
    std::uint64_t minLine = ~0ull;
    std::uint64_t maxLine = 0;
};

StreamStats
drive(SyntheticGenerator &gen, BackingStore &store, int n)
{
    StreamStats s;
    MemOp op;
    for (int i = 0; i < n; ++i) {
        EXPECT_TRUE(gen.next(op));
        s.gapSum += static_cast<double>(op.gapInsts);
        const std::uint64_t line = op.addr / kLineBytes;
        s.minLine = std::min(s.minLine, line);
        s.maxLine = std::max(s.maxLine, line);
        if (op.isWrite) {
            ++s.writes;
            const WordMask mask = store.essentialWords(line, op.data);
            ++s.dirtyHist[wordCount(mask)];
            store.writeWords(line, op.data, mask);
        } else {
            ++s.reads;
        }
    }
    return s;
}

TEST(Generator, DirtyWordHistogramMatchesProfile)
{
    const AppProfile &prof = findProfile("cactusADM");
    BackingStore store;
    SyntheticGenerator gen(prof, store, 42);
    const StreamStats s = drive(gen, store, 60000);
    ASSERT_GT(s.writes, 5000u);
    for (unsigned i = 0; i <= 8; ++i) {
        const double measured =
            100.0 * static_cast<double>(s.dirtyHist[i]) /
            static_cast<double>(s.writes);
        EXPECT_NEAR(measured, prof.dirtyWordPct[i], 2.0)
            << "dirty-word bin " << i;
    }
}

TEST(Generator, ReadWriteMixMatchesRpkiWpki)
{
    const AppProfile &prof = findProfile("canneal");
    BackingStore store;
    SyntheticGenerator gen(prof, store, 7);
    const StreamStats s = drive(gen, store, 40000);
    const double read_frac =
        static_cast<double>(s.reads) /
        static_cast<double>(s.reads + s.writes);
    EXPECT_NEAR(read_frac, prof.readFraction(), 0.01);
}

TEST(Generator, GapMeanMatchesApki)
{
    const AppProfile &prof = findProfile("astar");
    BackingStore store;
    SyntheticGenerator gen(prof, store, 11);
    const StreamStats s = drive(gen, store, 40000);
    const double mean_gap = s.gapSum / 40000.0;
    EXPECT_NEAR(mean_gap, 1000.0 / prof.apki(),
                0.05 * (1000.0 / prof.apki()));
}

TEST(Generator, AddressesStayInRegion)
{
    const AppProfile &prof = findProfile("gcc");
    BackingStore store;
    const std::uint64_t base = 1u << 20;
    const std::uint64_t lines = 4096;
    SyntheticGenerator gen(prof, store, 3, base, lines);
    const StreamStats s = drive(gen, store, 20000);
    EXPECT_GE(s.minLine, base);
    EXPECT_LT(s.maxLine, base + lines);
}

TEST(Generator, DeterministicPerSeed)
{
    const AppProfile &prof = findProfile("mcf");
    BackingStore s1;
    BackingStore s2;
    SyntheticGenerator g1(prof, s1, 123);
    SyntheticGenerator g2(prof, s2, 123);
    MemOp a;
    MemOp b;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(g1.next(a));
        ASSERT_TRUE(g2.next(b));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.isWrite, b.isWrite);
        ASSERT_EQ(a.gapInsts, b.gapInsts);
        if (a.isWrite) {
            ASSERT_EQ(a.data, b.data);
        }
        // Keep shadows in sync like the real system would.
        if (a.isWrite) {
            const std::uint64_t line = a.addr / kLineBytes;
            s1.writeWords(line, a.data,
                          s1.essentialWords(line, a.data));
            s2.writeWords(line, b.data,
                          s2.essentialWords(line, b.data));
        }
    }
}

TEST(Generator, DifferentSeedsDiverge)
{
    const AppProfile &prof = findProfile("mcf");
    BackingStore store;
    SyntheticGenerator g1(prof, store, 1);
    SyntheticGenerator g2(prof, store, 2);
    MemOp a;
    MemOp b;
    int same = 0;
    for (int i = 0; i < 500; ++i) {
        g1.next(a);
        g2.next(b);
        same += a.addr == b.addr ? 1 : 0;
    }
    EXPECT_LT(same, 50);
}

TEST(Generator, SilentStoresAreTrulySilent)
{
    // An app with a heavy 0-word bin must emit writes whose payload
    // equals the stored line exactly.
    AppProfile prof = findProfile("gcc"); // 25% silent
    BackingStore store;
    SyntheticGenerator gen(prof, store, 5);
    MemOp op;
    int silent = 0;
    for (int i = 0; i < 20000; ++i) {
        gen.next(op);
        if (!op.isWrite)
            continue;
        const std::uint64_t line = op.addr / kLineBytes;
        if (store.essentialWords(line, op.data) == 0)
            ++silent;
        store.writeWords(line, op.data,
                         store.essentialWords(line, op.data));
    }
    EXPECT_GT(silent, 0);
}

TEST(Generator, OffsetCorrelationShowsUp)
{
    // With offsetCorr high, consecutive one-word writes frequently
    // dirty the same offset.
    AppProfile prof = findProfile("libquantum");
    prof.offsetCorr = 0.9;
    prof.dirtyWordPct = {0, 100, 0, 0, 0, 0, 0, 0, 0}; // always 1 word
    BackingStore store;
    SyntheticGenerator gen(prof, store, 9);
    MemOp op;
    int repeats = 0;
    int pairs = 0;
    int last_offset = -1;
    for (int i = 0; i < 20000; ++i) {
        gen.next(op);
        if (!op.isWrite)
            continue;
        const std::uint64_t line = op.addr / kLineBytes;
        const WordMask mask = store.essentialWords(line, op.data);
        store.writeWords(line, op.data, mask);
        if (wordCount(mask) != 1)
            continue;
        const int off = std::countr_zero(static_cast<unsigned>(mask));
        if (last_offset >= 0) {
            ++pairs;
            repeats += off == last_offset ? 1 : 0;
        }
        last_offset = off;
    }
    ASSERT_GT(pairs, 1000);
    EXPECT_GT(static_cast<double>(repeats) / pairs, 0.6);
}

TEST(Generator, RowLocalityProducesSequentialRuns)
{
    AppProfile prof = findProfile("stream"); // rowHitRate 0.85
    BackingStore store;
    SyntheticGenerator gen(prof, store, 13);
    MemOp op;
    std::uint64_t prev = ~0ull;
    int sequential = 0;
    int reads = 0;
    for (int i = 0; i < 20000; ++i) {
        gen.next(op);
        if (op.isWrite)
            continue;
        const std::uint64_t line = op.addr / kLineBytes;
        if (prev != ~0ull) {
            ++reads;
            sequential += line == prev + 1 ? 1 : 0;
        }
        prev = line;
    }
    ASSERT_GT(reads, 1000);
    EXPECT_NEAR(static_cast<double>(sequential) / reads,
                prof.rowHitRate, 0.05);
}

} // namespace
} // namespace pcmap::workload
