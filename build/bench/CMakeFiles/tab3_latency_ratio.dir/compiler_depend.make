# Empty compiler generated dependencies file for tab3_latency_ratio.
# This may be replaced when dependencies are built.
