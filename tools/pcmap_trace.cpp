/**
 * @file
 * pcmap-trace: validate, summarize and merge the observability files
 * pcmap-sweep emits (Chrome trace_event JSON and epoch-timeline
 * JSONL).
 *
 *   pcmap-trace check FILE...            validate schemas; exit 1 on
 *                                        the first malformed file
 *   pcmap-trace summary FILE [top=N]     event counts, the N slowest
 *                                        requests, per-layer link and
 *                                        cache activity, per-bank
 *                                        conflict attribution (trace
 *                                        files) or run-level rates
 *                                        (timelines)
 *   pcmap-trace attrib FILE [top=N]      latency attribution: phase
 *                                        breakdown, per-tenant p99
 *                                        decomposition and the top-N
 *                                        tail exemplars
 *   pcmap-trace merge out=PATH FILE...   combine Chrome traces into
 *                                        one Perfetto-loadable file
 *                                        (per-input pid offset keeps
 *                                        points distinguishable)
 *
 * File kind is sniffed from content, not extension: a document whose
 * root object carries `traceEvents` is a Chrome trace; JSONL whose
 * rows carry `tick` is a timeline; rows with `pt` are trace JSONL;
 * rows with `kind` are attribution JSONL.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/epoch.h"
#include "obs/json_mini.h"
#include "obs/trace_event.h"
#include "sim/log.h"
#include "sweep/dist/atomic_file.h"

namespace {

using namespace pcmap;

void
usage()
{
    std::puts(
        "pcmap-trace: inspect pcmap observability files\n"
        "\n"
        "usage:\n"
        "  pcmap-trace check FILE...          validate trace/timeline/\n"
        "                                     attribution schemas\n"
        "  pcmap-trace summary FILE [top=N]   counts, slowest requests,\n"
        "                                     link/cache layer activity\n"
        "                                     and per-bank conflict\n"
        "                                     attribution (default\n"
        "                                     top=10; top=0 skips the\n"
        "                                     rankings)\n"
        "  pcmap-trace attrib FILE [top=N]    phase breakdown, per-\n"
        "                                     tenant p99 decomposition\n"
        "                                     and top-N tail exemplars\n"
        "                                     of an .attrib.jsonl file\n"
        "  pcmap-trace merge out=PATH FILE... combine Chrome traces\n"
        "                                     into one file");
}

/** What one input file turned out to contain. */
enum class FileKind { ChromeTrace, Timeline, TraceJsonl, AttribJsonl };

/** Non-empty lines of a JSONL body. */
std::vector<std::string>
splitLines(const std::string &body)
{
    std::vector<std::string> lines;
    std::istringstream is(body);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

/** Validate one Chrome trace_event document; fatal() on violations. */
std::size_t
checkChromeTrace(const std::string &path, const obs::JsonValue &doc)
{
    const obs::JsonValue *other = doc.get("otherData");
    if (other == nullptr || !other->isObject())
        fatal(path, ": missing otherData object");
    for (const char *key : {"recorded", "dropped"}) {
        const obs::JsonValue *v = other->get(key);
        if (v == nullptr || !v->isNumber())
            fatal(path, ": otherData.", key, " missing or not a number");
    }
    const obs::JsonValue *events = doc.get("traceEvents");
    if (events == nullptr || !events->isArray())
        fatal(path, ": missing traceEvents array");
    std::size_t n = 0;
    for (const obs::JsonValue &e : events->items()) {
        ++n;
        if (!e.isObject())
            fatal(path, ": traceEvents[", n - 1, "] is not an object");
        for (const char *key : {"name", "cat", "ph"}) {
            const obs::JsonValue *v = e.get(key);
            if (v == nullptr || !v->isString())
                fatal(path, ": event ", n - 1, ": '", key,
                      "' missing or not a string");
        }
        for (const char *key : {"ts", "pid", "tid"}) {
            const obs::JsonValue *v = e.get(key);
            if (v == nullptr || !v->isNumber())
                fatal(path, ": event ", n - 1, ": '", key,
                      "' missing or not a number");
        }
        const std::string &ph = e.get("ph")->asString();
        if (ph.size() != 1 || std::strchr("XiC", ph[0]) == nullptr)
            fatal(path, ": event ", n - 1, ": phase '", ph,
                  "' is not one of X, i, C");
        if (ph == "X" &&
            (e.get("dur") == nullptr || !e.get("dur")->isNumber()))
            fatal(path, ": event ", n - 1,
                  ": complete event without a numeric 'dur'");
        const obs::JsonValue *args = e.get("args");
        if (args == nullptr || !args->isObject())
            fatal(path, ": event ", n - 1, ": missing args object");
    }
    return n;
}

/** Validate one trace-JSONL row; fatal() on violations. */
void
checkTraceJsonlRow(const std::string &path, std::size_t lineno,
                   const obs::JsonValue &row)
{
    for (const char *key : {"pt", "ph"}) {
        const obs::JsonValue *v = row.get(key);
        if (v == nullptr || !v->isString())
            fatal(path, ":", lineno, ": '", key,
                  "' missing or not a string");
    }
    for (const char *key :
         {"ts", "dur", "id", "a0", "a1", "ch", "rank", "bank"}) {
        const obs::JsonValue *v = row.get(key);
        if (v == nullptr || !v->isNumber())
            fatal(path, ":", lineno, ": '", key,
                  "' missing or not a number");
    }
}

/** Validate one attribution-JSONL row; fatal() on violations. */
void
checkAttribRow(const std::string &path, std::size_t lineno,
               const obs::JsonValue &row)
{
    const std::string &kind = row.get("kind")->asString();
    if (kind == "phase" || kind == "total") {
        if (kind == "phase") {
            const obs::JsonValue *p = row.get("phase");
            if (p == nullptr || !p->isString())
                fatal(path, ":", lineno,
                      ": 'phase' missing or not a string");
        }
        const obs::JsonValue *op = row.get("op");
        if (op == nullptr || !op->isString())
            fatal(path, ":", lineno, ": 'op' missing or not a string");
        for (const char *key : {"tenant", "samples", "sumTicks", "p50",
                                "p90", "p99", "p999", "max"}) {
            const obs::JsonValue *v = row.get(key);
            if (v == nullptr || !v->isNumber())
                fatal(path, ":", lineno, ": '", key,
                      "' missing or not a number");
        }
        return;
    }
    if (kind == "exemplar") {
        const obs::JsonValue *op = row.get("op");
        if (op == nullptr || !op->isString())
            fatal(path, ":", lineno, ": 'op' missing or not a string");
        for (const char *key :
             {"rank", "tenant", "id", "startTick", "totalTicks"}) {
            const obs::JsonValue *v = row.get(key);
            if (v == nullptr || !v->isNumber())
                fatal(path, ":", lineno, ": '", key,
                      "' missing or not a number");
        }
        const obs::JsonValue *phases = row.get("phases");
        if (phases == nullptr || !phases->isObject())
            fatal(path, ":", lineno, ": missing phases object");
        for (const auto &[name, span] : phases->members()) {
            if (!span.isNumber())
                fatal(path, ":", lineno, ": phases.", name,
                      " is not a number");
        }
        return;
    }
    fatal(path, ":", lineno, ": unknown kind '", kind,
          "' (expected phase, total, or exemplar)");
}

/** Parse @p path, classify it, and validate; fatal() when invalid. */
FileKind
checkFile(const std::string &path, std::size_t &rows)
{
    const std::string body = sweep::dist::readFile(path);
    if (body.empty())
        fatal(path, ": empty file");
    // A Chrome trace is one JSON document; JSONL is one per line.
    if (body[0] == '{' && body.find("\"traceEvents\"") !=
                              std::string::npos) {
        std::string err;
        const auto doc = obs::parseJson(body, &err);
        if (!doc)
            fatal(path, ": ", err);
        if (!doc->isObject())
            fatal(path, ": root is not an object");
        rows = checkChromeTrace(path, *doc);
        return FileKind::ChromeTrace;
    }
    const std::vector<std::string> lines = splitLines(body);
    if (lines.empty())
        fatal(path, ": no JSONL rows");
    FileKind kind = FileKind::Timeline;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string err;
        const auto row = obs::parseJson(lines[i], &err);
        if (!row)
            fatal(path, ":", i + 1, ": ", err);
        if (!row->isObject())
            fatal(path, ":", i + 1, ": row is not an object");
        if (row->has("tick")) {
            kind = FileKind::Timeline;
            if (!obs::parseTimelineLine(lines[i], &err))
                fatal(path, ":", i + 1, ": ", err);
        } else if (row->has("pt")) {
            kind = FileKind::TraceJsonl;
            checkTraceJsonlRow(path, i + 1, *row);
        } else if (row->has("kind")) {
            kind = FileKind::AttribJsonl;
            checkAttribRow(path, i + 1, *row);
        } else {
            fatal(path, ":", i + 1,
                  ": row is neither a timeline sample (tick=), a "
                  "trace event (pt=), nor an attribution row "
                  "(kind=)");
        }
    }
    rows = lines.size();
    return kind;
}

int
checkMain(const std::vector<std::string> &files)
{
    if (files.empty())
        fatal("check: needs at least one file");
    for (const std::string &path : files) {
        std::size_t rows = 0;
        const FileKind kind = checkFile(path, rows);
        const char *what = "trace-jsonl events";
        if (kind == FileKind::ChromeTrace)
            what = "chrome-trace events";
        else if (kind == FileKind::Timeline)
            what = "timeline samples";
        else if (kind == FileKind::AttribJsonl)
            what = "attribution rows";
        std::printf("OK %s: %zu %s\n", path.c_str(), rows, what);
    }
    return 0;
}

/** One completed request pulled out of a Chrome trace for ranking. */
struct Completion
{
    double durUs = 0.0;
    double tsUs = 0.0;
    std::uint64_t id = 0;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    bool isWrite = false;
    std::uint64_t flags = 0;   ///< reads: arg0 flag bits
    std::string kind;          ///< writes: coarse/two_step/...
};

std::string
readFlagNames(std::uint64_t flags)
{
    std::string out;
    const std::pair<std::uint64_t, const char *> names[] = {
        {obs::kReadFlagRowHit, "rowHit"},
        {obs::kReadFlagSpeculative, "spec"},
        {obs::kReadFlagReconstruct, "reconstruct"},
        {obs::kReadFlagEccDeferred, "eccDeferred"},
        {obs::kReadFlagDelayedByWrite, "delayedByWrite"},
        {obs::kReadFlagForwarded, "forwarded"},
    };
    for (const auto &[bit, name] : names) {
        if (flags & bit) {
            if (!out.empty())
                out += "+";
            out += name;
        }
    }
    return out.empty() ? "-" : out;
}

int
summaryMain(const std::vector<std::string> &files, std::size_t top_n)
{
    if (files.size() != 1)
        fatal("summary: needs exactly one file");
    const std::string &path = files[0];
    // An empty capture (obs off, zero epochs) is an answer, not an
    // error: report it and succeed, unlike `check` which stays strict.
    if (splitLines(sweep::dist::readFile(path)).empty()) {
        std::printf("summary %s: no events\n", path.c_str());
        return 0;
    }
    std::size_t rows = 0;
    const FileKind kind = checkFile(path, rows);

    if (kind == FileKind::Timeline) {
        const std::vector<std::string> lines =
            splitLines(sweep::dist::readFile(path));
        obs::TimelineSample last;
        for (const std::string &line : lines)
            last = *obs::parseTimelineLine(line);
        std::printf("timeline %s: %zu samples over %.3f ms\n",
                    path.c_str(), rows,
                    static_cast<double>(last.tick) / 1e9);
        std::printf("  reads=%llu writes=%llu rowReads=%llu "
                    "eccDeferred=%llu wowMerged=%llu\n",
                    static_cast<unsigned long long>(last.readsCompleted),
                    static_cast<unsigned long long>(
                        last.writesCompleted),
                    static_cast<unsigned long long>(last.rowReads),
                    static_cast<unsigned long long>(
                        last.deferredEccReads),
                    static_cast<unsigned long long>(
                        last.wowMergedWrites));
        std::printf("  irlpMean=%.3f irlpMax=%u rowHitRate=%.4f "
                    "wowMergeRate=%.4f\n",
                    last.irlpMean(), last.irlpMax, last.rowHitRate(),
                    last.wowMergeRate());
        return 0;
    }
    if (kind == FileKind::TraceJsonl)
        fatal("summary: expects a Chrome trace (.trace.json) or a "
              "timeline (.timeline.jsonl), not trace JSONL");
    if (kind == FileKind::AttribJsonl)
        fatal("summary: ", path, " is an attribution file; use "
              "`pcmap-trace attrib` on it");

    const auto doc = obs::parseJson(sweep::dist::readFile(path));
    const obs::JsonValue *events = doc->get("traceEvents");
    const obs::JsonValue *other = doc->get("otherData");
    std::map<std::string, std::size_t> by_name;
    std::vector<Completion> completions;
    // Conflict attribution: reads flagged delayed-by-write, per bank.
    std::map<std::string, std::size_t> conflicts;
    // Per-layer activity pulled alongside the counts: link.issue
    // carries its queue wait in arg0 (ticks); cache.hit's dur is the
    // lookup-to-response window.
    std::size_t link_issues = 0;
    double link_wait_sum_us = 0.0;
    double link_wait_max_us = 0.0;
    std::size_t cache_hits = 0;
    double hit_sum_us = 0.0;
    double hit_max_us = 0.0;
    for (const obs::JsonValue &e : events->items()) {
        const std::string &name = e.get("name")->asString();
        ++by_name[name];
        if (name == "link.issue") {
            const double wait_us =
                e.get("args")->numberOr("arg0", 0.0) / 1e6;
            ++link_issues;
            link_wait_sum_us += wait_us;
            link_wait_max_us = std::max(link_wait_max_us, wait_us);
        } else if (name == "cache.hit") {
            const double dur_us = e.numberOr("dur", 0.0);
            ++cache_hits;
            hit_sum_us += dur_us;
            hit_max_us = std::max(hit_max_us, dur_us);
        }
        if (name != "read" && name != "write")
            continue;
        const obs::JsonValue *args = e.get("args");
        Completion c;
        c.durUs = e.numberOr("dur", 0.0);
        c.tsUs = e.numberOr("ts", 0.0);
        c.id = args->get("id") ? args->get("id")->asU64() : 0;
        c.channel = static_cast<unsigned>(e.numberOr("pid", 0.0));
        c.rank = static_cast<unsigned>(args->numberOr("rank", 0.0));
        c.bank = static_cast<unsigned>(args->numberOr("bank", 0.0));
        c.isWrite = name == "write";
        if (c.isWrite) {
            const obs::JsonValue *k = args->get("kind");
            c.kind = k != nullptr ? k->asString() : "?";
        } else {
            c.flags =
                args->get("arg0") ? args->get("arg0")->asU64() : 0;
            if (c.flags & obs::kReadFlagDelayedByWrite) {
                char key[48];
                std::snprintf(key, sizeof(key), "ch%u.rank%u.bank%u",
                              c.channel, c.rank, c.bank);
                ++conflicts[key];
            }
        }
        completions.push_back(std::move(c));
    }

    std::printf("trace %s: %zu events (%llu recorded, %llu dropped)\n",
                path.c_str(), rows,
                static_cast<unsigned long long>(
                    other->get("recorded")->asU64()),
                static_cast<unsigned long long>(
                    other->get("dropped")->asU64()));
    std::printf("events by name:\n");
    if (by_name.empty())
        std::printf("  none\n");
    for (const auto &[name, count] : by_name)
        std::printf("  %-18s %8zu\n", name.c_str(), count);

    // Layer sections appear only when the trace has those layers'
    // events, so memory-only traces keep their exact legacy output.
    const auto named = [&by_name](const char *n) {
        const auto it = by_name.find(n);
        return it == by_name.end() ? std::size_t{0} : it->second;
    };
    if (named("link.enqueue") + named("link.issue") +
            named("link.drop") >
        0) {
        std::printf("link layer: enqueued=%zu issued=%zu "
                    "dropped=%zu\n",
                    named("link.enqueue"), named("link.issue"),
                    named("link.drop"));
        if (link_issues > 0) {
            std::printf("  queue wait: mean=%.3f us  max=%.3f us\n",
                        link_wait_sum_us /
                            static_cast<double>(link_issues),
                        link_wait_max_us);
        }
    }
    if (named("cache.hit") + named("cache.miss") + named("cache.fill") +
            named("cache.writeback") >
        0) {
        std::printf("cache tier: hits=%zu misses=%zu fills=%zu "
                    "writebacks=%zu\n",
                    named("cache.hit"), named("cache.miss"),
                    named("cache.fill"), named("cache.writeback"));
        if (cache_hits > 0) {
            std::printf("  hit window: mean=%.3f us  max=%.3f us\n",
                        hit_sum_us / static_cast<double>(cache_hits),
                        hit_max_us);
        }
    }

    std::stable_sort(completions.begin(), completions.end(),
                     [](const Completion &a, const Completion &b) {
                         return a.durUs > b.durUs;
                     });
    std::printf("slowest %zu requests (enqueue-to-completion):\n",
                std::min(top_n, completions.size()));
    for (std::size_t i = 0; i < completions.size() && i < top_n; ++i) {
        const Completion &c = completions[i];
        std::printf("  %-5s id=%-10llu %10.3f us  ts=%.3f us  "
                    "ch%u.rank%u.bank%u  %s\n",
                    c.isWrite ? "write" : "read",
                    static_cast<unsigned long long>(c.id), c.durUs,
                    c.tsUs, c.channel, c.rank, c.bank,
                    c.isWrite ? c.kind.c_str()
                              : readFlagNames(c.flags).c_str());
    }

    std::vector<std::pair<std::string, std::size_t>> ranked(
        conflicts.begin(), conflicts.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    std::printf("read/write conflicts by bank (delayed-by-write "
                "reads):\n");
    if (ranked.empty())
        std::printf("  none\n");
    for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
        std::printf("  %-20s %8zu\n", ranked[i].first.c_str(),
                    ranked[i].second);
    }
    return 0;
}

// --- attrib ----------------------------------------------------------

/** Canonical phase order (matches obs::attrib::phaseName()). */
constexpr const char *kAttribPhases[] = {
    "linkWait",       "cacheLookup", "mshrWait",    "wbBufferStall",
    "queueResidency", "bankWait",    "arrayAccess", "roundPause",
    "verifyDefer",    "rollbackRedo", "unattributed",
};

/** One phase/total histogram row of an attribution file. */
struct AttribRow
{
    std::uint64_t samples = 0;
    std::uint64_t sumTicks = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
};

/** Histograms of one (tenant, op) family. */
struct AttribFamily
{
    std::map<std::string, AttribRow> phase;
    AttribRow total;
};

/** One tail exemplar: a full per-request ledger. */
struct AttribExemplar
{
    std::uint64_t rank = 0;
    std::uint64_t tenant = 0;
    std::uint64_t id = 0;
    std::uint64_t totalTicks = 0;
    std::string op;
    std::vector<std::pair<std::string, std::uint64_t>> phases;
};

double
ticksToUs(std::uint64_t ticks)
{
    return static_cast<double>(ticks) / 1e6;
}

AttribRow
parseAttribRow(const obs::JsonValue &row)
{
    AttribRow out;
    out.samples = row.get("samples")->asU64();
    out.sumTicks = row.get("sumTicks")->asU64();
    out.p50 = row.get("p50")->asU64();
    out.p99 = row.get("p99")->asU64();
    return out;
}

int
attribMain(const std::vector<std::string> &files, std::size_t top_n)
{
    if (files.size() != 1)
        fatal("attrib: needs exactly one file");
    const std::string &path = files[0];
    // Attribution on a run that completed no requests writes an empty
    // file; like summary, report that and succeed.
    const std::vector<std::string> lines =
        splitLines(sweep::dist::readFile(path));
    if (lines.empty()) {
        std::printf("attrib %s: no rows\n", path.c_str());
        return 0;
    }
    std::size_t rows = 0;
    if (checkFile(path, rows) != FileKind::AttribJsonl)
        fatal("attrib: ", path,
              " is not an attribution JSONL file (expected rows with "
              "kind=phase|total|exemplar)");

    std::map<std::pair<std::uint64_t, std::string>, AttribFamily> fams;
    std::vector<AttribExemplar> exemplars;
    for (const std::string &line : lines) {
        const auto row = obs::parseJson(line);
        const std::string &kind = row->get("kind")->asString();
        if (kind == "exemplar") {
            AttribExemplar ex;
            ex.rank = row->get("rank")->asU64();
            ex.tenant = row->get("tenant")->asU64();
            ex.id = row->get("id")->asU64();
            ex.totalTicks = row->get("totalTicks")->asU64();
            ex.op = row->get("op")->asString();
            for (const auto &[name, span] :
                 row->get("phases")->members())
                ex.phases.emplace_back(name, span.asU64());
            exemplars.push_back(std::move(ex));
            continue;
        }
        AttribFamily &fam = fams[{row->get("tenant")->asU64(),
                                  row->get("op")->asString()}];
        if (kind == "total")
            fam.total = parseAttribRow(*row);
        else
            fam.phase[row->get("phase")->asString()] =
                parseAttribRow(*row);
    }

    std::printf("attribution %s: %zu (tenant, op) families, "
                "%zu exemplars\n",
                path.c_str(), fams.size(), exemplars.size());

    // Aggregate phase breakdown: where did the time go, across every
    // tenant and op?  Shares are of the summed request latency, so
    // annex phases (verify holds past completion) can push the column
    // past 100%.
    std::uint64_t total_sum = 0;
    for (const auto &[key, fam] : fams)
        total_sum += fam.total.sumTicks;
    std::printf("phase breakdown (all tenants, all ops):\n");
    std::printf("  %-15s %10s %14s %8s\n", "phase", "samples",
                "time(ms)", "share");
    for (const char *phase : kAttribPhases) {
        std::uint64_t samples = 0;
        std::uint64_t sum = 0;
        for (const auto &[key, fam] : fams) {
            const auto it = fam.phase.find(phase);
            if (it == fam.phase.end())
                continue;
            samples += it->second.samples;
            sum += it->second.sumTicks;
        }
        if (samples == 0 && sum == 0)
            continue;
        std::printf("  %-15s %10llu %14.3f %7.1f%%\n", phase,
                    static_cast<unsigned long long>(samples),
                    static_cast<double>(sum) / 1e9,
                    total_sum > 0 ? 100.0 * static_cast<double>(sum) /
                                        static_cast<double>(total_sum)
                                  : 0.0);
    }
    std::printf("  %-15s %10llu %14.3f %7.1f%%\n", "total",
                static_cast<unsigned long long>([&fams] {
                    std::uint64_t n = 0;
                    for (const auto &[key, fam] : fams)
                        n += fam.total.samples;
                    return n;
                }()),
                static_cast<double>(total_sum) / 1e9,
                total_sum > 0 ? 100.0 : 0.0);

    // Per-family decomposition: the exact tick sums let a reader (or
    // a test) confirm conservation against the exported histograms.
    std::printf("per-tenant decomposition:\n");
    for (const auto &[key, fam] : fams) {
        std::uint64_t phase_sum = 0;
        for (const auto &[name, row] : fam.phase)
            phase_sum += row.sumTicks;
        std::printf("  tenant %llu %-9s samples=%llu  p50=%.3f us  "
                    "p99=%.3f us  phaseSumTicks=%llu  "
                    "totalSumTicks=%llu\n",
                    static_cast<unsigned long long>(key.first),
                    key.second.c_str(),
                    static_cast<unsigned long long>(fam.total.samples),
                    ticksToUs(fam.total.p50), ticksToUs(fam.total.p99),
                    static_cast<unsigned long long>(phase_sum),
                    static_cast<unsigned long long>(
                        fam.total.sumTicks));
        for (const char *phase : kAttribPhases) {
            const auto it = fam.phase.find(phase);
            if (it == fam.phase.end() || it->second.sumTicks == 0)
                continue;
            const AttribRow &row = it->second;
            std::printf("    %-15s p99=%10.3f us  share=%5.1f%%\n",
                        phase, ticksToUs(row.p99),
                        fam.total.sumTicks > 0
                            ? 100.0 *
                                  static_cast<double>(row.sumTicks) /
                                  static_cast<double>(
                                      fam.total.sumTicks)
                            : 0.0);
        }
    }

    // Tail exemplars, dominant phase first: the critical-path story
    // of each of the slowest requests the reservoir kept.
    std::printf("slowest %zu exemplars:\n",
                std::min(top_n, exemplars.size()));
    if (exemplars.empty() || top_n == 0)
        std::printf("  none\n");
    for (std::size_t i = 0; i < exemplars.size() && i < top_n; ++i) {
        const AttribExemplar &ex = exemplars[i];
        const char *dominant = "-";
        std::uint64_t dom_span = 0;
        for (const auto &[name, span] : ex.phases) {
            if (span > dom_span) {
                dom_span = span;
                dominant = name.c_str();
            }
        }
        std::printf("  #%-3llu %-9s tenant=%llu id=%llu  "
                    "total=%.3f us  dominant=%s (%.1f%%)\n",
                    static_cast<unsigned long long>(ex.rank),
                    ex.op.c_str(),
                    static_cast<unsigned long long>(ex.tenant),
                    static_cast<unsigned long long>(ex.id),
                    ticksToUs(ex.totalTicks), dominant,
                    ex.totalTicks > 0
                        ? 100.0 * static_cast<double>(dom_span) /
                              static_cast<double>(ex.totalTicks)
                        : 0.0);
        for (const auto &[name, span] : ex.phases) {
            if (span == 0)
                continue;
            std::printf("       %-15s %10.3f us\n", name.c_str(),
                        ticksToUs(span));
        }
    }
    return 0;
}

// --- merge -----------------------------------------------------------

/** Append @p v re-serialized (raw number tokens kept exact). */
void
appendJson(std::string &out, const obs::JsonValue &v)
{
    switch (v.kind()) {
    case obs::JsonValue::Kind::Null:
        out += "null";
        return;
    case obs::JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
    case obs::JsonValue::Kind::Number:
        if (!v.asString().empty()) {
            out += v.asString(); // the exact source token
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", v.asNumber());
            out += buf;
        }
        return;
    case obs::JsonValue::Kind::String:
        out += '"';
        for (const char c : v.asString()) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        out += '"';
        return;
    case obs::JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const obs::JsonValue &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            appendJson(out, item);
        }
        out += ']';
        return;
    }
    case obs::JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, val] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += key;
            out += "\":";
            appendJson(out, val);
        }
        out += '}';
        return;
    }
    }
}

/**
 * Each input's pids land on their own band so merged points stay side
 * by side in Perfetto.  The stride must clear every band a single
 * trace uses — plain channels, the fabric's per-tenant link rows at
 * pid 1000+tenant, and the cache tier at pid 2000 — or two inputs'
 * rows would interleave under one pid.
 */
constexpr std::uint64_t kMergePidStride = 10000;

int
mergeMain(const std::string &out_path,
          const std::vector<std::string> &files)
{
    if (out_path.empty())
        fatal("merge: needs out=PATH");
    if (files.empty())
        fatal("merge: needs at least one input file");
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::string events;
    bool first = true;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::size_t rows = 0;
        if (checkFile(files[i], rows) != FileKind::ChromeTrace)
            fatal("merge: ", files[i], " is not a Chrome trace file");
        const auto doc =
            obs::parseJson(sweep::dist::readFile(files[i]));
        const obs::JsonValue *other = doc->get("otherData");
        recorded += other->get("recorded")->asU64();
        dropped += other->get("dropped")->asU64();
        for (const obs::JsonValue &e :
             doc->get("traceEvents")->items()) {
            obs::JsonValue shifted = e;
            for (auto &[key, val] : shifted.fields) {
                if (key == "pid") {
                    val = obs::JsonValue::makeNumber(
                        val.asNumber() +
                            static_cast<double>(i * kMergePidStride),
                        std::to_string(val.asU64() +
                                       i * kMergePidStride));
                }
            }
            if (!first)
                events += ",\n";
            first = false;
            appendJson(events, shifted);
        }
    }
    std::string out;
    out.reserve(events.size() + 256);
    out += "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"recorded\":";
    out += std::to_string(recorded);
    out += ",\"dropped\":";
    out += std::to_string(dropped);
    out += ",\"mergedFiles\":";
    out += std::to_string(files.size());
    out += "},\"traceEvents\":[";
    out += events;
    out += "]}\n";
    sweep::dist::atomicWriteFile(out_path, out);
    std::printf("merged %zu files -> %s\n", files.size(),
                out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc <= 1) {
        usage();
        return 0;
    }
    const std::string cmd = argv[1];
    std::vector<std::string> files;
    std::size_t top_n = 10;
    std::string out_path;
    for (int i = 2; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("top=", 0) == 0) {
            // top=0 is allowed: counts and layer sections only, no
            // per-request rankings.
            top_n = static_cast<std::size_t>(
                std::strtoull(token.c_str() + 4, nullptr, 10));
        } else if (token.rfind("out=", 0) == 0) {
            out_path = token.substr(4);
        } else {
            files.push_back(token);
        }
    }
    if (cmd == "check")
        return checkMain(files);
    if (cmd == "summary")
        return summaryMain(files, top_n);
    if (cmd == "attrib")
        return attribMain(files, top_n);
    if (cmd == "merge")
        return mergeMain(out_path, files);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    fatal("unknown subcommand '", cmd,
          "' (expected check, summary, attrib, or merge)");
}
