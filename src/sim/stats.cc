#include "sim/stats.h"

#include <cmath>
#include <iomanip>
#include <ostream>

namespace pcmap::stats {

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    group.addStat(this);
}

namespace {

void
emit(std::ostream &os, const std::string &prefix, const std::string &name,
     double value, const std::string &desc)
{
    os << std::left << std::setw(48) << (prefix + name) << " "
       << std::right << std::setw(16) << std::setprecision(6) << value
       << "  # " << desc << "\n";
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name(), total, description());
}

void
Scalar::collect(FlatStats &out, const std::string &prefix) const
{
    out.emplace_back(prefix + name(), total);
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name() + ".mean", mean(), description());
    emit(os, prefix, name() + ".samples",
         static_cast<double>(count), description());
}

void
Average::collect(FlatStats &out, const std::string &prefix) const
{
    out.emplace_back(prefix + name() + ".mean", mean());
    out.emplace_back(prefix + name() + ".samples",
                     static_cast<double>(count));
}

Distribution::Distribution(StatGroup &group, std::string name,
                           std::string desc, double lo, double hi,
                           double bucket_size)
    : StatBase(group, std::move(name), std::move(desc)),
      low(lo), high(hi), width(bucket_size)
{
    pcmap_assert(hi > lo && bucket_size > 0.0);
    const auto n = static_cast<std::size_t>(
        std::ceil((hi - lo) / bucket_size));
    buckets.assign(n, 0);
}

void
Distribution::sample(double v)
{
    if (count == 0) {
        minValue = maxValue = v;
    } else {
        minValue = std::min(minValue, v);
        maxValue = std::max(maxValue, v);
    }
    ++count;
    sum += v;
    if (v < low) {
        ++underflow;
    } else if (v >= high) {
        ++overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - low) / width);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        ++buckets[idx];
    }
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name() + ".mean", mean(), description());
    emit(os, prefix, name() + ".min", count ? minValue : 0.0,
         description());
    emit(os, prefix, name() + ".max", count ? maxValue : 0.0,
         description());
    emit(os, prefix, name() + ".samples",
         static_cast<double>(count), description());
    emit(os, prefix, name() + ".underflow",
         static_cast<double>(underflow), description());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        emit(os, prefix,
             name() + ".bucket" + std::to_string(i),
             static_cast<double>(buckets[i]), description());
    }
    emit(os, prefix, name() + ".overflow",
         static_cast<double>(overflow), description());
}

void
Distribution::collect(FlatStats &out, const std::string &prefix) const
{
    out.emplace_back(prefix + name() + ".mean", mean());
    out.emplace_back(prefix + name() + ".min", count ? minValue : 0.0);
    out.emplace_back(prefix + name() + ".max", count ? maxValue : 0.0);
    out.emplace_back(prefix + name() + ".samples",
                     static_cast<double>(count));
    out.emplace_back(prefix + name() + ".underflow",
                     static_cast<double>(underflow));
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        out.emplace_back(prefix + name() + ".bucket" + std::to_string(i),
                         static_cast<double>(buckets[i]));
    }
    out.emplace_back(prefix + name() + ".overflow",
                     static_cast<double>(overflow));
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = overflow = count = 0;
    sum = minValue = maxValue = 0.0;
}

void
TimeWeighted::dump(std::ostream &os, const std::string &prefix) const
{
    emit(os, prefix, name() + ".timeMean", mean(), description());
    emit(os, prefix, name() + ".max", maxValue, description());
}

void
TimeWeighted::collect(FlatStats &out, const std::string &prefix) const
{
    out.emplace_back(prefix + name() + ".timeMean", mean());
    out.emplace_back(prefix + name() + ".max", maxValue);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string here =
        groupName.empty() ? prefix : prefix + groupName + ".";
    for (const StatBase *s : statList)
        s->dump(os, here);
    for (const StatGroup *g : children)
        g->dump(os, here);
}

void
StatGroup::collect(FlatStats &out, const std::string &prefix) const
{
    const std::string here =
        groupName.empty() ? prefix : prefix + groupName + ".";
    for (const StatBase *s : statList)
        s->collect(out, here);
    for (const StatGroup *g : children)
        g->collect(out, here);
}

FlatStats
StatGroup::flattened() const
{
    FlatStats out;
    collect(out);
    return out;
}

void
StatGroup::resetAll()
{
    for (StatBase *s : statList)
        s->reset();
    for (StatGroup *g : children)
        g->resetAll();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *s : statList) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

} // namespace pcmap::stats
