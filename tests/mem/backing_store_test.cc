/**
 * @file
 * Tests for the functional backing store: sparse semantics, essential
 * word discovery, incremental code maintenance, and fault injection.
 */

#include <gtest/gtest.h>

#include "ecc/line_codec.h"
#include "mem/backing_store.h"
#include "sim/rng.h"

namespace pcmap {
namespace {

CacheLine
randomLine(Rng &rng)
{
    CacheLine l;
    for (auto &w : l.w)
        w = rng.next();
    return l;
}

TEST(BackingStore, UntouchedLinesReadAsZeroWithValidCodes)
{
    BackingStore bs;
    const StoredLine &s = bs.read(12345);
    EXPECT_EQ(s.data, CacheLine{});
    EXPECT_EQ(s.ecc, ecc::computeEccWord(CacheLine{}));
    EXPECT_EQ(s.pcc, 0u);
    EXPECT_EQ(bs.population(), 0u);
}

TEST(BackingStore, WriteLineStoresAndCodes)
{
    BackingStore bs;
    Rng rng(1);
    const CacheLine l = randomLine(rng);
    bs.writeLine(7, l);
    const StoredLine &s = bs.read(7);
    EXPECT_EQ(s.data, l);
    EXPECT_EQ(s.ecc, ecc::computeEccWord(l));
    EXPECT_EQ(s.pcc, ecc::computePccWord(l));
    EXPECT_EQ(bs.population(), 1u);
}

TEST(BackingStore, EssentialWordsAgainstZeroLine)
{
    BackingStore bs;
    CacheLine l{};
    l.w[3] = 99;
    EXPECT_EQ(bs.essentialWords(5, l), WordMask{1u << 3});
    EXPECT_EQ(bs.essentialWords(5, CacheLine{}), 0u);
}

TEST(BackingStore, EssentialWordsAfterWrite)
{
    BackingStore bs;
    Rng rng(2);
    const CacheLine l = randomLine(rng);
    bs.writeLine(9, l);
    CacheLine mod = l;
    mod.w[0] ^= 1;
    mod.w[5] ^= 2;
    EXPECT_EQ(bs.essentialWords(9, mod), WordMask{0x21});
    EXPECT_EQ(bs.essentialWords(9, l), 0u);
}

TEST(BackingStore, WriteWordsAppliesOnlyMaskedWords)
{
    BackingStore bs;
    Rng rng(3);
    const CacheLine original = randomLine(rng);
    bs.writeLine(11, original);

    CacheLine update = randomLine(rng);
    bs.writeWords(11, update, WordMask{0x05}); // words 0 and 2

    const StoredLine &s = bs.read(11);
    EXPECT_EQ(s.data.w[0], update.w[0]);
    EXPECT_EQ(s.data.w[2], update.w[2]);
    for (unsigned i : {1u, 3u, 4u, 5u, 6u, 7u})
        EXPECT_EQ(s.data.w[i], original.w[i]) << "word " << i;
}

TEST(BackingStore, IncrementalCodesStayConsistent)
{
    BackingStore bs;
    Rng rng(4);
    const std::uint64_t line = 42;
    bs.writeLine(line, randomLine(rng));
    // Apply a long random sequence of partial writes and confirm the
    // incrementally maintained codes always equal a fresh computation.
    for (int step = 0; step < 200; ++step) {
        CacheLine next = bs.read(line).data;
        const auto mask = static_cast<WordMask>(rng.below(256));
        for (unsigned i = 0; i < kWordsPerLine; ++i) {
            if (mask & (1u << i))
                next.w[i] = rng.next();
        }
        bs.writeWords(line, next, bs.essentialWords(line, next));
        const StoredLine &s = bs.read(line);
        ASSERT_EQ(s.ecc, ecc::computeEccWord(s.data)) << "step " << step;
        ASSERT_EQ(s.pcc, ecc::computePccWord(s.data)) << "step " << step;
    }
}

TEST(BackingStore, WriteWordsWithEmptyMaskIsNoOp)
{
    BackingStore bs;
    Rng rng(5);
    bs.writeWords(3, randomLine(rng), 0);
    EXPECT_EQ(bs.population(), 0u);
}

TEST(BackingStore, CorruptDataBitBreaksSecded)
{
    BackingStore bs;
    Rng rng(6);
    const CacheLine l = randomLine(rng);
    bs.writeLine(8, l);
    bs.corruptDataBit(8, 64 + 5); // bit 5 of word 1

    const StoredLine &s = bs.read(8);
    EXPECT_NE(s.data.w[1], l.w[1]);
    // SECDED sees and corrects the injected single-bit error.
    CacheLine probe = s.data;
    const ecc::LineCheckResult r = ecc::checkLine(probe, s.ecc);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.correctedWords, WordMask{1u << 1});
    EXPECT_EQ(probe.w[1], l.w[1]);
}

TEST(BackingStore, CorruptionBreaksParityReconstruction)
{
    BackingStore bs;
    Rng rng(7);
    const CacheLine l = randomLine(rng);
    bs.writeLine(2, l);
    bs.corruptDataBit(2, 7); // word 0

    const StoredLine &s = bs.read(2);
    // Reconstructing word 0 from parity returns the *original* value
    // (the parity word was computed before corruption), which differs
    // from the stored corrupted word — exactly the inconsistency the
    // deferred SECDED verify catches.
    const std::uint64_t rebuilt =
        ecc::reconstructWord(s.data, 0, s.pcc);
    EXPECT_EQ(rebuilt, l.w[0]);
    EXPECT_NE(rebuilt, s.data.w[0]);
}

TEST(BackingStore, ManyLinesSparsePopulation)
{
    BackingStore bs;
    Rng rng(8);
    for (std::uint64_t i = 0; i < 100; ++i) {
        CacheLine l{};
        l.w[0] = i + 1;
        bs.writeWords(i * 1000, l, 0x01);
    }
    EXPECT_EQ(bs.population(), 100u);
    EXPECT_EQ(bs.read(50 * 1000).data.w[0], 51u);
}

} // namespace
} // namespace pcmap
