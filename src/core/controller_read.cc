/**
 * @file
 * MemoryController read service: committing the plan the access
 * scheduler produced (reservations, buses, stats) and completing it
 * through the line layout's read materialization, plus the deferred
 * SECDED verification of speculative reads.
 */

#include "core/controller.h"

#include <algorithm>

#include "obs/attrib.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace pcmap {

void
MemoryController::issueRead(const ReadPlan &plan)
{
    const Tick now = eventq.now();
    pcmap_assert(plan.index < readQ.size());
    ReadEntry entry = std::move(readQ[plan.index]);
    readQ.erase(readQ.begin() +
                static_cast<std::ptrdiff_t>(plan.index));

    const DecodedAddr loc = entry.loc;
    const std::uint64_t line = entry.line;
    const ChipMask data_mask = entry.dataMask;

    if (obs::attrib::PhaseLedger *led = entry.req.ledger) {
        // Decompose the queue wait before this issue's reservation
        // lands: the span the planned chips were busy is bankWait,
        // the residual (scheduler order, bus/lane/turnaround slack)
        // is queueResidency.
        const Tick bank_free = std::min(
            ranks[loc.rank].freeAt(plan.chips, loc.bank), plan.start);
        led->account(obs::attrib::Phase::BankWait, bank_free);
        led->account(obs::attrib::Phase::QueueResidency, plan.start);
    }

    reserveChips(loc.rank, plan.chips, loc.bank, loc.row, plan.start,
                 plan.end, false);
    if (scheduler->closesRowAfterAccess()) {
        forEachSetBit(plan.chips, [&](unsigned c) {
            ranks[loc.rank].closeRow(c, loc.bank);
        });
    }
    unsigned num_cmds = plan.rowHit ? 1 : 2;
    if (cfg.fineGrained && plan.speculative) {
        // The controller polled the DIMM status register to learn
        // which chips are busy (Section IV-D1).
        num_cmds += static_cast<unsigned>(cfg.timing.tStatus);
        ++counters.statusPolls;
    }
    occupyBuses(plan.chips, plan.end - cfg.timing.burstTicks(), plan.end,
                false, num_cmds);
    irlpTrackers[loc.rank].addOp(now, plan.start, plan.end,
                                 plan.chips & data_mask, false);

    if (plan.rowHit)
        energyModel.recordBufferAccess(1);
    else
        energyModel.recordActivation(1);
    energyModel.recordBusTransfer(chipCount(plan.chips));

    if (plan.reconstruct)
        ++counters.rowReads;
    if (plan.eccDeferred)
        ++counters.deferredEccReads;
    if (plan.speculative)
        ++pendingVerifies;
    if (draining)
        ++counters.readsIssuedDuringDrain;
    counters.readQueueWaitSum += static_cast<double>(
        plan.start - entry.req.enqueueTick);
    counters.queueResidencyHist.sample(plan.start -
                                       entry.req.enqueueTick);

    const bool delayed = entry.delayedByWrite || plan.delayedByWrite;
    if (trace != nullptr) {
        const std::uint64_t flags =
            (plan.rowHit ? obs::kReadFlagRowHit : 0) |
            (plan.speculative ? obs::kReadFlagSpeculative : 0) |
            (plan.reconstruct ? obs::kReadFlagReconstruct : 0) |
            (plan.eccDeferred ? obs::kReadFlagEccDeferred : 0) |
            (delayed ? obs::kReadFlagDelayedByWrite : 0);
        trace->record(obs::TracePoint::ReadIssue, plan.start,
                      plan.end - plan.start, entry.req.id, plan.chips,
                      flags, channelId, loc.rank, loc.bank);
        unsigned busy_lanes = 0;
        for (unsigned c = 0; c < kChipsPerRank; ++c) {
            if (laneFreeAt[c] > now)
                ++busy_lanes;
        }
        trace->record(obs::TracePoint::LaneOccupancy, now, 0, 0,
                      busy_lanes, 0, channelId);
    }
    notifyRetry(); // read-queue space freed

    ++inFlight;
    ReadPlan plan_copy = plan;
    eventq.schedule(plan.end, [this, plan = plan_copy,
                               entry = std::move(entry), loc,
                               line, delayed]() mutable {
        const Tick done = eventq.now();
        const StoredLine &stored = backing.read(line);
        CacheLine out;
        const bool fault = lineLayout->materializeRead(
            stored, plan.reconstruct, plan.missingWord, plan.speculative,
            plan.eccDeferred, out);

        ReadResponse resp;
        resp.id = entry.req.id;
        resp.addr = entry.req.addr;
        resp.coreId = entry.req.coreId;
        resp.completionTick = done;
        resp.data = out;
        resp.speculative = plan.speculative;

        ++counters.readsCompleted;
        if (delayed)
            ++counters.readsDelayedByWrite;
        const double lat =
            static_cast<double>(done - entry.req.enqueueTick);
        counters.readLatencySum += lat;
        counters.readLatencyMax = std::max(counters.readLatencyMax, lat);
        counters.readLatencyHist.sample(done - entry.req.enqueueTick);
        if (trace != nullptr) {
            const std::uint64_t flags =
                (plan.rowHit ? obs::kReadFlagRowHit : 0) |
                (plan.speculative ? obs::kReadFlagSpeculative : 0) |
                (plan.reconstruct ? obs::kReadFlagReconstruct : 0) |
                (plan.eccDeferred ? obs::kReadFlagEccDeferred : 0) |
                (delayed ? obs::kReadFlagDelayedByWrite : 0);
            trace->record(obs::TracePoint::ReadComplete,
                          entry.req.enqueueTick,
                          done - entry.req.enqueueTick, entry.req.id,
                          flags, 0, channelId, loc.rank, loc.bank);
        }

        if (obs::attrib::PhaseLedger *led = entry.req.ledger) {
            led->account(obs::attrib::Phase::ArrayAccess, done);
            // A speculative read completes now but its attribution
            // waits for the deferred verify verdict (annex phases).
            if (plan.speculative)
                attrib->holdForVerify(led);
            attrib->close(led, done);
        }

        if (plan.speculative)
            queueVerifyOp(plan, entry.req, loc, fault);

        --inFlight;
        entry.cb(resp);
        kick();
    });
}

void
MemoryController::queueVerifyOp(const ReadPlan &plan, const MemRequest &req,
                                const DecodedAddr &loc, bool fault)
{
    BgOp op;
    op.rank = loc.rank;
    op.bank = loc.bank;
    op.row = loc.row;
    op.isWrite = false;
    op.created = eventq.now();
    ChipMask chips = 0;
    if (plan.reconstruct && plan.busyChip != kNoWord)
        chips |= static_cast<ChipMask>(1u << plan.busyChip);
    if (plan.eccDeferred) {
        const std::uint64_t line = addrMap.lineAddr(req.addr);
        chips |= static_cast<ChipMask>(1u << lineLayout->eccChip(line));
    }
    pcmap_assert(chips != 0);
    op.chips = chips;
    op.duration = cfg.timing.readHitTicks();
    const ReqId id = req.id;
    const unsigned core = req.coreId;
    PCMAP_OBS_TRACE(trace, obs::TracePoint::SpecDefer, op.created, 0,
                    id, chips, 0, channelId, loc.rank, loc.bank);
    const unsigned v_rank = loc.rank;
    const unsigned v_bank = loc.bank;
    obs::attrib::PhaseLedger *led = req.ledger;
    op.onDone = [this, id, core, fault, v_rank, v_bank, led]() {
        ++counters.verifiesCompleted;
        pcmap_assert(pendingVerifies > 0);
        --pendingVerifies;
        if (fault)
            ++counters.faultsDetected;
        PCMAP_OBS_TRACE(trace,
                        fault ? obs::TracePoint::SpecRollback
                              : obs::TracePoint::SpecVerify,
                        eventq.now(), 0, id, 0, 0, channelId, v_rank,
                        v_bank);
        if (attrib != nullptr)
            attrib->finishSpec(led, eventq.now(), fault);
        if (verifyCb)
            verifyCb(id, core, fault);
    };
    if (!cfg.modelVerifyTraffic) {
        // Ablation: the check is functionally performed but charged
        // no chip time; report it one read-hit later.
        ++inFlight;
        eventq.schedule(eventq.now() + cfg.timing.readHitTicks(),
                        [this, done = std::move(op.onDone)]() {
                            --inFlight;
                            done();
                            kick();
                        });
        return;
    }
    bgOps.push_back(std::move(op));
}

bool
MemoryController::readWantsBank(unsigned rank, unsigned bank) const
{
    for (const ReadEntry &r : readQ) {
        if (r.loc.rank == rank && r.loc.bank == bank)
            return true;
    }
    return false;
}

bool
MemoryController::readWantsChips(unsigned rank, unsigned bank,
                                 ChipMask chips) const
{
    for (const ReadEntry &r : readQ) {
        if (r.loc.rank != rank || r.loc.bank != bank)
            continue;
        if (r.inlineMask & chips)
            return true;
    }
    return false;
}

} // namespace pcmap
