/**
 * @file
 * The PCMap memory controller: one instance per channel.
 *
 * Implements the baseline PCM scheduling policy of Section II-B
 * (read-over-write priority with write-queue watermarks, FR-FCFS) and
 * the PCMap mechanisms of Section IV:
 *
 *  - fine-grained (sub-ranked) writes confined to essential chips;
 *  - RoW: during a one-essential-word write, reads to the same bank
 *    are served by reading the seven free data chips plus the PCC
 *    chip and XOR-reconstructing the busy chip's word; SECDED
 *    verification is deferred to a background operation;
 *  - WoW: consolidation of queued writes to the same bank whose
 *    essential chip sets are disjoint;
 *  - address-based rotation of data words and of the ECC/PCC words.
 *
 * Policy layer
 * ------------
 * The mechanisms are not hard-coded: the controller composes three
 * policy objects built by ControllerPolicy from its configuration —
 * an AccessScheduler (read planning, drain behaviour, page policy),
 * a WriteCoalescer (WoW grouping, two-/multi-step splitting) and a
 * LineLayout (word/code placement, read materialization).  The
 * controller keeps all timing-state mutation (reservations, buses,
 * event scheduling); the policies only plan.  See DESIGN.md,
 * "Controller policy layer".
 *
 * Timing model
 * ------------
 * Transaction level with per-(chip, bank) reservations, per-chip data
 * lanes, a shared command bus, and write-to-read turnaround — the same
 * abstraction level as DRAMSim2.  ECC/PCC code updates that the paper
 * propagates "in the background during idle periods" are modelled as
 * background operations that yield to pending reads; deferred SECDED
 * verifications of speculative reads use the same machinery, which is
 * exactly what makes the single ECC chip a bottleneck in the -NR
 * configurations and what the RDE rotation relieves.
 */

#ifndef PCMAP_CORE_CONTROLLER_H
#define PCMAP_CORE_CONTROLLER_H

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller_config.h"
#include "core/controller_stats.h"
#include "core/policy/access_scheduler.h"
#include "core/policy/controller_policy.h"
#include "core/policy/line_layout.h"
#include "core/policy/write_coalescer.h"
#include "mem/address.h"
#include "mem/backing_store.h"
#include "mem/bank_state.h"
#include "mem/energy.h"
#include "mem/irlp.h"
#include "mem/rank.h"
#include "mem/request.h"
#include "mem/wear.h"
#include "obs/trace_event.h"
#include "sim/event_queue.h"
#include "sim/slab_pool.h"
#include "sim/types.h"

namespace pcmap {

namespace obs {
class TraceRecorder;
namespace attrib {
class AttribCollector;
} // namespace attrib
} // namespace obs

/**
 * One channel's memory controller (Figure 7).
 *
 * Owns the timing state of its single rank, its read/write queues and
 * the background-operation list, and drives everything from the shared
 * event queue.
 */
class MemoryController : private ReadWindowModel
{
  public:
    using ReadCallback = MemoryPort::ReadCallback;
    using VerifyCallback = MemoryPort::VerifyCallback;
    using RetryCallback = MemoryPort::RetryCallback;
    using WriteCompleteCallback = MemoryPort::WriteCompleteCallback;

    /**
     * @param name    Instance name for diagnostics ("mc0", ...).
     * @param cfg     Full controller configuration (validated here).
     * @param eq      Shared simulation event queue.
     * @param store   Functional memory image (shared across channels).
     * @param mapper  Address mapper (shared; defines bank/row decode).
     * @param channel Channel index this controller serves.
     */
    MemoryController(std::string name, const ControllerConfig &cfg,
                     EventQueue &eq, BackingStore &store,
                     const AddressMapper &mapper, unsigned channel);

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    /** Try to enqueue a read; false when the read queue is full. */
    bool enqueueRead(const MemRequest &req, ReadCallback cb);

    /** Try to enqueue a write-back; false when the WQ is full. */
    bool enqueueWrite(const MemRequest &req);

    void setRetryCallback(RetryCallback cb) { retryCb = std::move(cb); }
    void setVerifyCallback(VerifyCallback cb) { verifyCb = std::move(cb); }
    void
    setWriteCompleteCallback(WriteCompleteCallback cb)
    {
        writeCompleteCb = std::move(cb);
    }

    /**
     * Attach the run's trace recorder (null detaches).  Propagated to
     * the composed scheduler/coalescer so policy decisions trace too.
     */
    void setTraceRecorder(obs::TraceRecorder *rec);

    /** Attach the run's attribution collector (null detaches). */
    void setAttrib(obs::attrib::AttribCollector *collector)
    {
        attrib = collector;
    }

    /** Counters (live; finalize() closes time-weighted windows). */
    const ControllerStats &stats() const { return counters; }

    /** Number of ranks this controller manages. */
    unsigned numRanks() const { return static_cast<unsigned>(ranks.size()); }

    /** Time-weighted IRLP tracker of one rank (default: rank 0). */
    const IrlpTracker &irlp(unsigned rank = 0) const
    {
        return irlpTrackers[rank];
    }

    /** Total write-service window time across ranks, in ticks. */
    double irlpWindowTicks() const;

    /** Integral of busy chips over all write windows (mean * window). */
    double irlpArea() const;

    /** Peak concurrent busy data chips across ranks. */
    unsigned irlpMaxSeen() const;

    /** Energy accounting for this channel. */
    const EnergyModel &energy() const { return energyModel; }

    /** Per-chip/per-line endurance accounting for this channel. */
    const WearTracker &wear() const { return wearTracker; }

    /** Close out time-integrated statistics at @p end_of_sim. */
    void finalize(Tick end_of_sim);

    /** True when no request is queued or in flight. */
    bool idle() const;

    std::size_t readQueueDepth() const { return readQ.size(); }
    std::size_t writeQueueDepth() const { return writeQ.size(); }

    /**
     * (rank, bank) pairs with any chip busy at @p now, for the epoch
     * sampler's bank-busy fraction.  Uses the monotone busy ceiling,
     * so write cancellation can leave it transiently stale-high.
     */
    unsigned busyBankCount(Tick now) const;

    /** Total (rank, bank) pairs this controller manages. */
    unsigned
    totalBankCount() const
    {
        return static_cast<unsigned>(ranks.size()) * cfg.banksPerRank;
    }

    const std::string &name() const { return instName; }
    const ControllerConfig &config() const { return cfg; }

    // --- Composed policy objects (read-only; for tests/diagnostics) ---
    const LineLayout &layoutPolicy() const { return *lineLayout; }
    const AccessScheduler &schedulerPolicy() const { return *scheduler; }
    const WriteCoalescer &coalescerPolicy() const { return *coalescer; }

  private:
    /** A deferred code-update or verification on specific chips. */
    struct BgOp
    {
        ChipMask chips = 0;
        unsigned rank = 0;
        unsigned bank = 0;
        std::uint64_t row = 0;
        /** Line a pending pre-SET targets (kNoPresetLine otherwise). */
        std::uint64_t presetLine = ~0ull;
        Tick duration = 0;
        Tick created = 0;
        bool isWrite = false; ///< code update (write) vs verify (read)
        std::function<void()> onDone; ///< may be empty (code updates)
    };

    // --- Scheduling ---
    void kick();
    void scheduleKick(Tick when);
    void issueRead(const ReadPlan &plan);
    /**
     * Try to issue the head-of-queue write (plus WoW merges).
     * @return true when something issued; otherwise sets
     * @p earliest to the first tick worth retrying at.
     */
    bool tryIssueWrites(Tick now, Tick &earliest);
    void tryIssueBgOps(Tick now);

    // --- Timing helpers ---
    /**
     * Earliest feasible [start, end) of an array read transaction on
     * @p chips at (@p bank, @p row), honouring chip, lane, command-bus
     * and turnaround constraints from @p lower_bound.  Overrides the
     * ReadWindowModel interface the access scheduler plans through.
     */
    void computeReadWindow(ChipMask chips, unsigned bank,
                           std::uint64_t row, Tick lower_bound,
                           bool row_hit, Tick &start,
                           Tick &end) const override;
    /** Same for a write transaction (column write + burst + pulse). */
    void computeWriteWindow(ChipMask chips, unsigned bank, Tick lower_bound,
                            Tick &start, Tick &end) const;
    /** Mutable rank state for @p rank. */
    Rank &rankState(unsigned rank) { return ranks[rank]; }
    /** Commit bus/lane occupancy for an issued transaction. */
    void occupyBuses(ChipMask chips, Tick burst_start, Tick burst_end,
                     bool is_write, unsigned num_cmds);

    /** Reserve every chip in @p chips for [start, end). */
    void reserveChips(unsigned rank, ChipMask chips, unsigned bank,
                      std::uint64_t row, Tick start, Tick end,
                      bool is_write);

    // --- Write service pieces ---
    void completeSilentWrite(WriteEntry entry, WordMask essential);
    /** Queue background ECC/PCC updates for a committed write. */
    void queueCodeUpdates(std::uint64_t line_addr, unsigned rank,
                          unsigned bank, std::uint64_t row, bool ecc,
                          bool pcc, Tick created);
    /**
     * Schedule the functional commit + completion of one write.
     * @param kind How the write was served (trace/latency labelling).
     * @param track_active When true the completion clears the
     *        cancellable activeWrite record.
     * @return Handle usable to cancel the completion.
     */
    EventHandle scheduleWriteCompletion(const WriteEntry &entry,
                                        WordMask essential, Tick done,
                                        obs::WriteKind kind,
                                        bool track_active = false);

    /**
     * Queue the deferred SECDED verification of a speculative read;
     * @p fault is the functionally precomputed outcome delivered when
     * the background check completes.
     */
    void queueVerifyOp(const ReadPlan &plan, const MemRequest &req,
                       const DecodedAddr &loc, bool fault);

    void updateDrainState();
    void notifyRetry();

    /** Cancel the in-flight coarse write for a waiting read. */
    void maybeCancelActiveWrite(Tick now);

    /** Queue a background pre-SET for a freshly buffered write. */
    void queuePreset(std::uint64_t line_addr, unsigned rank,
                     unsigned bank, std::uint64_t row);

    /** True when some queued read targets @p bank of @p rank. */
    bool readWantsBank(unsigned rank, unsigned bank) const;

    /** True when a queued read needs any of @p chips there. */
    bool readWantsChips(unsigned rank, unsigned bank,
                        ChipMask chips) const;

    // --- Construction-time state ---
    std::string instName;
    ControllerConfig cfg;
    EventQueue &eventq;
    BackingStore &backing;
    const AddressMapper &addrMap;
    unsigned channelId;

    // --- Composed policies (built from cfg by ControllerPolicy) ---
    std::unique_ptr<LineLayout> lineLayout;
    std::unique_ptr<AccessScheduler> scheduler;
    std::unique_ptr<WriteCoalescer> coalescer;

    // --- Timing state ---
    std::vector<Rank> ranks;
    /** Read-only facade the policies plan over (aliases ranks). */
    BankStateView bankView{ranks};
    std::array<Tick, kChipsPerRank> laneFreeAt{};
    /** max over laneFreeAt: a burst at or past it skips the lane walk. */
    Tick laneMaxFree = 0;
    Tick cmdBusFreeAt = 0;
    Tick lastReadBurstEnd = 0;
    Tick lastWriteBurstEnd = 0;
    /** One write group in service per rank. */
    std::vector<Tick> writeSlotFreeAt;

    /** In-flight coarse write, cancellable under write cancellation. */
    struct ActiveCoarseWrite
    {
        bool valid = false;
        unsigned rank = 0;
        unsigned bank = 0;
        Tick start = 0;
        Tick end = 0;
        /** First tick of the array pulse train (after column + burst). */
        Tick pulseStart = 0;
        /** One programming round's pulse length; 0 for single-round
         *  (SLC) writes, which cancel immediately as before. */
        Tick roundTicks = 0;
        EventHandle completion;
        WriteEntry entry;
    };
    ActiveCoarseWrite activeWrite;

    // --- Queues ---
    ReadQueue readQ;
    WriteQueue writeQ;
    std::vector<BgOp> bgOps;
    unsigned codeBacklog = 0; ///< code updates within bgOps
    unsigned pendingVerifies = 0; ///< speculative reads not yet checked
    bool draining = false;

    // --- Bookkeeping ---
    unsigned inFlight = 0; ///< issued but not yet completed transactions
    EventHandle kickEvent;
    Tick kickAt = kTickMax;

    RetryCallback retryCb;
    VerifyCallback verifyCb;
    WriteCompleteCallback writeCompleteCb;

    ControllerStats counters;
    std::vector<IrlpTracker> irlpTrackers;
    EnergyModel energyModel;
    WearTracker wearTracker;

    /**
     * Slab pool behind the write scheduler's short-lived shared
     * state (continuation chains, parked entries, group member
     * lists): free-list reuse instead of a malloc per write.
     */
    SlabArena slabArena;

    /** Run-level trace recorder; null when tracing is off. */
    obs::TraceRecorder *trace = nullptr;

    /** Run-level attribution collector; null when attribution is off. */
    obs::attrib::AttribCollector *attrib = nullptr;

    /** Age beyond which a background code update goes foreground. */
    static constexpr Tick kBgForceAge = 3 * kMicrosecond;
    /** Deferred verifications are forced much sooner (rollback window). */
    static constexpr Tick kVerifyForceAge = 2 * kMicrosecond;
};

} // namespace pcmap

#endif // PCMAP_CORE_CONTROLLER_H
