/**
 * @file
 * Figure 2: the dirty-word distribution of cache-line write-backs.
 *
 * Drives each SPEC program's write-back stream (generator + functional
 * store, no timing) through the differential-write comparison and
 * prints the percentage of writes updating exactly i of the 8 words —
 * the histogram PCMap's entire opportunity rests on.  Checks the
 * paper's anchors: 14%-52% of write-backs have exactly one dirty
 * word, and ~77-99% have fewer than four.
 */

#include "bench_common.h"

#include "mem/backing_store.h"
#include "workload/analysis.h"
#include "workload/generator.h"

int
main(int argc, char **argv)
{
    using namespace pcmap;
    using namespace pcmap::bench;

    const HarnessConfig hc = HarnessConfig::parse(argc, argv);
    const auto writes_wanted = hc.raw.getUint("writes", 40'000);
    banner("Figure 2: essential (dirty) words per write-back",
           "Fig. 2 — 14%-52% one-word writes; <4 words for 77%-99%; "
           "suite mean ~2.3 essential words",
           hc);

    std::printf("%-12s", "program");
    for (unsigned i = 0; i <= 8; ++i)
        std::printf("  %2uW", i);
    std::printf("   <4W  mean\n");
    rule(74);

    std::vector<double> one_word;
    std::vector<double> means;
    for (const std::string &prog : workload::figure1Programs()) {
        BackingStore store;
        workload::SyntheticGenerator gen(workload::findProfile(prog),
                                         store, hc.seed);
        const workload::StreamAnalysis a =
            workload::analyzeWrites(gen, store, writes_wanted);

        std::printf("%-12s", prog.c_str());
        for (unsigned i = 0; i <= 8; ++i)
            std::printf(" %4.0f", a.pctWithWords(i));
        std::printf("  %4.0f %5.2f\n", a.pctBelowWords(4),
                    a.meanDirtyWords());
        one_word.push_back(a.pctWithWords(1));
        means.push_back(a.meanDirtyWords());
    }
    rule(74);
    double min1 = 100.0;
    double max1 = 0.0;
    for (double v : one_word) {
        min1 = std::min(min1, v);
        max1 = std::max(max1, v);
    }
    std::printf("one-word writes: %.0f%%-%.0f%% (paper: 14%%-52%%); "
                "suite mean %.2f essential words (paper: ~2.3)\n",
                min1, max1, mean(means));
    return 0;
}
