file(REMOVE_RECURSE
  "CMakeFiles/secded_distance_test.dir/ecc/secded_distance_test.cc.o"
  "CMakeFiles/secded_distance_test.dir/ecc/secded_distance_test.cc.o.d"
  "secded_distance_test"
  "secded_distance_test.pdb"
  "secded_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secded_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
