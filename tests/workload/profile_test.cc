/**
 * @file
 * Tests for the built-in application profiles: internal consistency
 * and agreement with the numbers the paper publishes.
 */

#include <gtest/gtest.h>

#include "workload/mixes.h"
#include "workload/profile.h"

namespace pcmap::workload {
namespace {

TEST(Profiles, AllBuiltInsValidate)
{
    for (const AppProfile &p : allProfiles()) {
        p.validate();
        EXPECT_GT(p.apki(), 0.0) << p.name;
        EXPECT_GE(p.meanDirtyWords(), 0.0) << p.name;
        EXPECT_LE(p.meanDirtyWords(), 8.0) << p.name;
    }
}

TEST(Profiles, Figure1ProgramsAllExist)
{
    const auto programs = figure1Programs();
    EXPECT_EQ(programs.size(), 13u);
    for (const std::string &name : programs)
        EXPECT_TRUE(hasProfile(name)) << name;
}

TEST(Profiles, ParsecThirteenProgramsExist)
{
    const auto programs = parsecPrograms();
    EXPECT_EQ(programs.size(), 13u);
    for (const std::string &name : programs) {
        EXPECT_TRUE(hasProfile(name)) << name;
        EXPECT_EQ(findProfile(name).suite, Suite::Parsec2) << name;
    }
}

TEST(Profiles, TableIIMtNumbersAreUsedVerbatim)
{
    EXPECT_DOUBLE_EQ(findProfile("canneal").rpki, 15.19);
    EXPECT_DOUBLE_EQ(findProfile("canneal").wpki, 7.13);
    EXPECT_DOUBLE_EQ(findProfile("dedup").rpki, 3.04);
    EXPECT_DOUBLE_EQ(findProfile("facesim").wpki, 1.26);
    EXPECT_DOUBLE_EQ(findProfile("fluidanimate").rpki, 5.54);
    EXPECT_DOUBLE_EQ(findProfile("freqmine").wpki, 3.33);
    EXPECT_DOUBLE_EQ(findProfile("streamcluster").rpki, 5.19);
}

TEST(Profiles, Figure2AnchorsHold)
{
    // cactusADM peaks at 52% one-word write-backs, omnetpp bottoms at
    // 14% (Section III-B).
    EXPECT_DOUBLE_EQ(findProfile("cactusADM").dirtyWordPct[1], 52.0);
    EXPECT_DOUBLE_EQ(findProfile("omnetpp").dirtyWordPct[1], 14.0);
    double min1 = 100.0;
    double max1 = 0.0;
    for (const std::string &name : figure1Programs()) {
        const double p1 = findProfile(name).dirtyWordPct[1];
        min1 = std::min(min1, p1);
        max1 = std::max(max1, p1);
    }
    EXPECT_DOUBLE_EQ(min1, 14.0);
    EXPECT_DOUBLE_EQ(max1, 52.0);
}

TEST(Profiles, SuiteMeanDirtyWordsNearPaperAverage)
{
    // Footnote 3's suite-average distribution implies ~2.3 essential
    // words per write-back; the profile set must stay in that band
    // (it anchors baseline IRLP = 2.37).
    double mean = 0.0;
    int n = 0;
    for (const std::string &name : figure1Programs()) {
        mean += findProfile(name).meanDirtyWords();
        ++n;
    }
    mean /= n;
    EXPECT_GT(mean, 1.8);
    EXPECT_LT(mean, 2.9);
}

TEST(Profiles, UnknownNameIsFatal)
{
    EXPECT_EXIT(findProfile("no-such-app"),
                ::testing::ExitedWithCode(1), "unknown application");
    EXPECT_FALSE(hasProfile("no-such-app"));
}

TEST(Mixes, TableIIMixesComposition)
{
    const WorkloadSpec mp1 = makeWorkload("MP1");
    ASSERT_EQ(mp1.cores(), 8u);
    EXPECT_FALSE(mp1.sharedAddressSpace);
    EXPECT_EQ(mp1.coreApps[0], "mcf");
    EXPECT_EQ(mp1.coreApps[1], "mcf");
    EXPECT_EQ(mp1.coreApps[2], "gemsFDTD");
    EXPECT_EQ(mp1.coreApps[4], "astar");
    EXPECT_EQ(mp1.coreApps[6], "sphinx3");

    const WorkloadSpec mp4 = makeWorkload("MP4");
    for (const std::string &app : mp4.coreApps)
        EXPECT_EQ(app, "astar");

    const WorkloadSpec mp6 = makeWorkload("MP6");
    EXPECT_EQ(mp6.coreApps[0], "cactusADM");
    EXPECT_EQ(mp6.coreApps[2], "soplex");
}

TEST(Mixes, MtWorkloadsShareAddressSpace)
{
    const WorkloadSpec w = makeWorkload("canneal");
    EXPECT_TRUE(w.sharedAddressSpace);
    EXPECT_EQ(w.cores(), 8u);
    for (const std::string &app : w.coreApps)
        EXPECT_EQ(app, "canneal");
}

TEST(Mixes, SpecSingleProgramIsPrivate)
{
    const WorkloadSpec w = makeWorkload("astar");
    EXPECT_FALSE(w.sharedAddressSpace);
}

TEST(Mixes, EvaluatedSetMatchesFigures)
{
    EXPECT_EQ(evaluatedMtWorkloads().size(), 6u);
    EXPECT_EQ(evaluatedMpWorkloads().size(), 6u);
    EXPECT_EQ(evaluatedWorkloads().size(), 12u);
    for (const std::string &name : evaluatedWorkloads()) {
        const WorkloadSpec spec = makeWorkload(name);
        EXPECT_EQ(spec.cores(), 8u) << name;
    }
}

TEST(Mixes, CustomCoreCount)
{
    EXPECT_EQ(makeWorkload("MP1", 4).cores(), 4u);
    EXPECT_EQ(makeWorkload("canneal", 2).cores(), 2u);
}

TEST(MixesDeath, ZeroCoresIsFatal)
{
    EXPECT_EXIT(makeWorkload("MP1", 0), ::testing::ExitedWithCode(1),
                "at least one core");
}

} // namespace
} // namespace pcmap::workload
