/**
 * @file
 * RunObserver: the per-System bundle of observability state.
 *
 * Owns the trace recorder (when tracing is on) and the epoch
 * timeline.  System creates one only when ObsConfig::enabled(), so a
 * default-configured run carries no observability state at all.
 */

#ifndef PCMAP_OBS_OBSERVER_H
#define PCMAP_OBS_OBSERVER_H

#include <memory>

#include "obs/attrib.h"
#include "obs/epoch.h"
#include "obs/obs_config.h"
#include "obs/trace.h"

namespace pcmap::obs {

class RunObserver
{
  public:
    explicit RunObserver(const ObsConfig &config) : cfg(config)
    {
        if (cfg.trace)
            rec = std::make_unique<TraceRecorder>(cfg.traceCapacity);
        if (cfg.attrib)
            col = std::make_unique<attrib::AttribCollector>(
                cfg.attribExemplars);
    }

    const ObsConfig &config() const { return cfg; }

    /** Null when tracing is off. */
    TraceRecorder *recorder() { return rec.get(); }
    const TraceRecorder *recorder() const { return rec.get(); }

    /** Null when attribution is off. */
    attrib::AttribCollector *attribCollector() { return col.get(); }
    const attrib::AttribCollector *
    attribCollector() const
    {
        return col.get();
    }

    Timeline &timeline() { return tl; }
    const Timeline &timeline() const { return tl; }

  private:
    ObsConfig cfg;
    std::unique_ptr<TraceRecorder> rec;
    std::unique_ptr<attrib::AttribCollector> col;
    Timeline tl;
};

} // namespace pcmap::obs

#endif // PCMAP_OBS_OBSERVER_H
