/**
 * @file
 * Epoch time-series: periodic snapshots of the aggregate state the
 * end-of-run stats only summarize.
 *
 * Samples carry *cumulative* counters (not per-epoch deltas), summed
 * over channels in the same order System::run aggregates them.  That
 * makes the final sample an exact restatement of the run's aggregate
 * results — IRLP mean/max, RoW/WoW hit rates and write throughput can
 * be recomputed from it bit-for-bit (obs_integration_test asserts
 * this), and any epoch-over-epoch delta is just a subtraction.
 *
 * The JSONL writer uses shortest-round-trip double formatting, so a
 * parsed timeline recomputes the same values exactly.
 */

#ifndef PCMAP_OBS_EPOCH_H
#define PCMAP_OBS_EPOCH_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace pcmap::obs {

/** One timeline row: cumulative counters as of `tick`. */
struct TimelineSample
{
    Tick tick = 0;

    std::uint64_t readsCompleted = 0;
    std::uint64_t writesCompleted = 0;
    std::uint64_t rowReads = 0;         ///< PCC-reconstructed reads
    std::uint64_t deferredEccReads = 0; ///< ECC check deferred
    std::uint64_t writesEnqueued = 0;
    std::uint64_t wowGroups = 0;
    std::uint64_t wowMergedWrites = 0;

    double irlpArea = 0.0;        ///< integral of busy chips over windows
    double irlpWindowTicks = 0.0; ///< total write-window ticks
    std::uint32_t irlpMax = 0;    ///< peak concurrent busy data chips

    std::uint64_t readQueueDepth = 0;  ///< instantaneous, all channels
    std::uint64_t writeQueueDepth = 0; ///< instantaneous, all channels
    double bankBusyFraction = 0.0;     ///< busy (rank,bank) pairs / total

    // --- Derived rates (0 when the denominator is 0) ---
    double
    irlpMean() const
    {
        return irlpWindowTicks > 0.0 ? irlpArea / irlpWindowTicks : 0.0;
    }

    double
    rowHitRate() const
    {
        return readsCompleted
                   ? static_cast<double>(rowReads + deferredEccReads) /
                         static_cast<double>(readsCompleted)
                   : 0.0;
    }

    double
    wowMergeRate() const
    {
        return writesCompleted
                   ? static_cast<double>(wowMergedWrites) /
                         static_cast<double>(writesCompleted)
                   : 0.0;
    }
};

/** An ordered run of timeline samples. */
class Timeline
{
  public:
    void push(const TimelineSample &s) { rows.push_back(s); }
    const std::vector<TimelineSample> &samples() const { return rows; }
    bool empty() const { return rows.empty(); }
    std::size_t size() const { return rows.size(); }
    const TimelineSample &back() const { return rows.back(); }

  private:
    std::vector<TimelineSample> rows;
};

/** Write one JSON object per sample; byte-deterministic. */
void writeTimelineJsonl(const Timeline &tl, std::ostream &out);

/** Convenience: timeline JSONL as a string. */
std::string timelineJsonl(const Timeline &tl);

/**
 * Parse one timeline JSONL line back into a sample; nullopt (with
 * @p err set when non-null) on malformed input.  Exact inverse of the
 * writer for every value it emits.
 */
std::optional<TimelineSample>
parseTimelineLine(const std::string &line, std::string *err = nullptr);

} // namespace pcmap::obs

#endif // PCMAP_OBS_EPOCH_H
