/**
 * @file
 * The trace-point catalog and the POD event record.
 *
 * Every instrumented site in the controller/policy layer records one
 * TraceEvent.  Events are fixed-size PODs so the ring buffer is a flat
 * array with no per-event allocation; all string rendering happens in
 * the sinks, after the run.
 *
 * Lifecycle ("X", complete) events carry a duration; instant ("i")
 * events mark a decision point; counter ("C") events snapshot queue
 * depths / lane occupancy.  See DESIGN.md "Observability" for the
 * full catalog with per-point argument meanings.
 */

#ifndef PCMAP_OBS_TRACE_EVENT_H
#define PCMAP_OBS_TRACE_EVENT_H

#include <cstdint>

#include "sim/types.h"

namespace pcmap::obs {

enum class TracePoint : std::uint8_t {
    // --- Read lifecycle ---
    ReadEnqueue,    ///< i: read entered the queue (arg0 = depth after)
    ReadForwarded,  ///< i: answered from the write queue, no PCM access
    ReadRejected,   ///< i: read queue full
    ReadIssue,      ///< X: array access window (arg0 = chips, arg1 = flags)
    ReadComplete,   ///< X: full enqueue->completion span (arg0 = flags)
    // --- RoW speculation ---
    SpecPlan,       ///< i: scheduler formed a speculative plan
    SpecDefer,      ///< i: verification queued (arg0 = chips)
    SpecVerify,     ///< i: deferred SECDED check passed
    SpecRollback,   ///< i: deferred check failed; rollback triggered
    // --- Write lifecycle ---
    WriteEnqueue,   ///< i: write-back buffered (arg0 = depth after)
    WriteCoalesced, ///< i: merged into an already-buffered line
    WriteRejected,  ///< i: write queue full
    WriteIssue,     ///< X: service window (arg0 = chips, arg1 = kind)
    WriteComplete,  ///< X: full enqueue->commit span (arg0 = kind)
    WriteCancel,    ///< i: in-flight coarse write cancelled for a read
    // --- WoW coalescing ---
    WowAccept,      ///< i: candidate joined group (arg0=chips, arg1=size)
    WowReject,      ///< i: candidate rejected (arg0 = WowReject reason)
    // --- Background machinery ---
    BgIssue,        ///< X: background op window (arg0=chips, arg1=kind)
    // --- Counters ---
    QueueDepth,     ///< C: arg0 = read queue, arg1 = write queue
    LaneOccupancy,  ///< C: arg0 = busy chip lanes at ts
    // --- Fabric link (channel field carries the tenant id) ---
    LinkEnqueue,    ///< i: request queued at the link (arg0 = depth after)
    LinkIssue,      ///< X: serialization window (arg0 = queueing wait)
    LinkDrop,       ///< i: tenant queue full; request dropped
    // --- DRAM cache tier ---
    CacheHit,       ///< X: hit service window (arg0 = line addr)
    CacheMiss,      ///< i: miss (arg0 = line addr, arg1 = 1 if merged)
    CacheFill,      ///< i: line installed (arg0 = line, arg1 = waiters)
    CacheWriteback, ///< i: victim to PCM (arg0=dirty words, arg1=depth)
};

/** Why a WoW merge candidate was not added to the group. */
enum class WowReject : std::uint8_t {
    Silent,        ///< no essential words; completed for free instead
    ChipOverlap,   ///< essential chips intersect the group's set
    ChipsBusy,     ///< chips free in-group but busy in the bank
    GroupFull,     ///< group already at wowMaxMerge members
    ScanExhausted, ///< scan depth hit before the queue ran out
};

/** How an issued write was served (WriteIssue/WriteComplete arg1/arg0). */
enum class WriteKind : std::uint8_t {
    Coarse,    ///< full-line (all data + ECC chips in lockstep)
    TwoStep,   ///< 1-essential-word split: data+ECC now, PCC later
    MultiStep, ///< serialized one-chip-at-a-time RoW write
    Group,     ///< member of a WoW consolidation group
    Silent,    ///< zero essential words; no array access
};

/** What a background op did (BgIssue arg1; bit 8 set when forced). */
enum class BgKind : std::uint8_t {
    CodeUpdate, ///< deferred ECC/PCC propagation (array write)
    Verify,     ///< deferred SECDED verification (array read)
    Preset,     ///< background line pre-SET
};
constexpr std::uint64_t kBgForcedFlag = 1ull << 8;

// ReadIssue/ReadComplete arg flags.
constexpr std::uint64_t kReadFlagRowHit = 1u << 0;
constexpr std::uint64_t kReadFlagSpeculative = 1u << 1;
constexpr std::uint64_t kReadFlagReconstruct = 1u << 2;
constexpr std::uint64_t kReadFlagEccDeferred = 1u << 3;
constexpr std::uint64_t kReadFlagDelayedByWrite = 1u << 4;
constexpr std::uint64_t kReadFlagForwarded = 1u << 5;

/** One recorded event; 40 bytes, trivially copyable. */
struct TraceEvent
{
    Tick ts = 0;          ///< event (or window start) tick
    Tick dur = 0;         ///< window length for "X" points, else 0
    std::uint64_t id = 0; ///< request id (reads) or line addr (writes)
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    TracePoint point{};
    std::uint8_t channel = 0;
    std::uint8_t rank = 0;
    std::uint8_t bank = 0;
};

/** Stable lower-case name used in sinks ("read.issue", ...). */
const char *tracePointName(TracePoint p);

/** Chrome trace_event phase for the point: 'X', 'i' or 'C'. */
char tracePointPhase(TracePoint p);

/** Category string for the point ("read", "write", "wow", ...). */
const char *tracePointCategory(TracePoint p);

/** Stable name for a WoW reject reason ("chip_overlap", ...). */
const char *wowRejectName(WowReject r);

/** Stable name for a write kind ("coarse", "group", ...). */
const char *writeKindName(WriteKind k);

} // namespace pcmap::obs

#endif // PCMAP_OBS_TRACE_EVENT_H
