#include "mem/wear.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace pcmap {

double
WearTracker::chipImbalance() const
{
    std::uint64_t max_writes = 0;
    std::uint64_t sum = 0;
    unsigned populated = 0;
    for (std::uint64_t w : chipWrites) {
        max_writes = std::max(max_writes, w);
        sum += w;
        populated += w > 0 ? 1 : 0;
    }
    if (populated == 0)
        return 1.0;
    const double mean =
        static_cast<double>(sum) / static_cast<double>(kChipsPerRank);
    return mean > 0.0 ? static_cast<double>(max_writes) / mean : 1.0;
}

double
WearTracker::chipCv() const
{
    double sum = 0.0;
    for (std::uint64_t w : chipWrites)
        sum += static_cast<double>(w);
    const double mean = sum / static_cast<double>(kChipsPerRank);
    if (mean == 0.0)
        return 0.0;
    double var = 0.0;
    for (std::uint64_t w : chipWrites) {
        const double d = static_cast<double>(w) - mean;
        var += d * d;
    }
    var /= static_cast<double>(kChipsPerRank);
    return std::sqrt(var) / mean;
}

double
WearTracker::lineImbalance() const
{
    if (lineWrites.empty())
        return 1.0;
    std::uint64_t max_writes = 0;
    std::uint64_t sum = 0;
    for (const auto &[line, count] : lineWrites) {
        max_writes = std::max(max_writes, count);
        sum += count;
    }
    const double mean = static_cast<double>(sum) /
                        static_cast<double>(lineWrites.size());
    return mean > 0.0 ? static_cast<double>(max_writes) / mean : 1.0;
}

StartGapRemapper::StartGapRemapper(std::uint64_t region_lines,
                                   std::uint64_t gap_write_period)
    : lines(region_lines), period(gap_write_period), gap(region_lines)
{
    if (lines == 0)
        fatal("Start-Gap region must hold at least one line");
    if (period == 0)
        fatal("Start-Gap write period must be positive");
}

std::uint64_t
StartGapRemapper::remap(std::uint64_t logical) const
{
    // Qureshi et al.'s Start-Gap mapping: rotate by Start modulo N,
    // then skip over the gap slot.  The intermediate value lies in
    // [0, N-1], so the skip lands in [1, N] and can never collide
    // with a gap at slot 0.
    pcmap_assert(logical < lines);
    std::uint64_t phys = (logical + start) % lines;
    if (phys >= gap)
        ++phys;
    return phys;
}

bool
StartGapRemapper::onWrite()
{
    if (++writesSinceMove < period)
        return false;
    writesSinceMove = 0;
    ++movements;
    // Move the gap one slot down; once it has swept the whole region
    // every line has shifted by one, so Start advances.
    if (gap == 0) {
        gap = lines;
        start = (start + 1) % lines;
    } else {
        --gap;
    }
    return true;
}

} // namespace pcmap
