#include "sweep/sweep_io.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace pcmap::sweep {

namespace {

/** Shortest decimal that round-trips a double, locale-independent. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the shorter %.15g / %.16g form when it round-trips.
    for (int prec = 15; prec <= 16; ++prec) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v)
            return shorter;
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** The fixed per-run metric list exported from SystemResults. */
const std::vector<std::pair<const char *,
                            double (*)(const SystemResults &)>> &
metricFields()
{
    using R = SystemResults;
    static const std::vector<
        std::pair<const char *, double (*)(const R &)>>
        fields = {
            {"ipcSum", [](const R &r) { return r.ipcSum; }},
            {"avgReadLatencyNs",
             [](const R &r) { return r.avgReadLatencyNs; }},
            {"writeThroughput",
             [](const R &r) { return r.writeThroughput; }},
            {"irlpMean", [](const R &r) { return r.irlpMean; }},
            {"irlpMax", [](const R &r) { return r.irlpMax; }},
            {"pctReadsDelayedByWrite",
             [](const R &r) { return r.pctReadsDelayedByWrite; }},
            {"avgEssentialWords",
             [](const R &r) { return r.avgEssentialWords; }},
            {"readsCompleted",
             [](const R &r) {
                 return static_cast<double>(r.readsCompleted);
             }},
            {"writesCompleted",
             [](const R &r) {
                 return static_cast<double>(r.writesCompleted);
             }},
            {"rowReads",
             [](const R &r) {
                 return static_cast<double>(r.rowReads);
             }},
            {"deferredEccReads",
             [](const R &r) {
                 return static_cast<double>(r.deferredEccReads);
             }},
            {"specReads",
             [](const R &r) {
                 return static_cast<double>(r.specReads);
             }},
            {"consumedBeforeVerify",
             [](const R &r) {
                 return static_cast<double>(r.consumedBeforeVerify);
             }},
            {"rollbacks",
             [](const R &r) {
                 return static_cast<double>(r.rollbacks);
             }},
            {"twoStepWrites",
             [](const R &r) {
                 return static_cast<double>(r.twoStepWrites);
             }},
            {"wowGroups",
             [](const R &r) {
                 return static_cast<double>(r.wowGroups);
             }},
            {"wowMergedWrites",
             [](const R &r) {
                 return static_cast<double>(r.wowMergedWrites);
             }},
            {"energyUj", [](const R &r) { return r.energyUj; }},
            {"wearChipImbalance",
             [](const R &r) { return r.wearChipImbalance; }},
            {"rpki", [](const R &r) { return r.rpki; }},
            {"wpki", [](const R &r) { return r.wpki; }},
            {"simTicks",
             [](const R &r) {
                 return static_cast<double>(r.simTicks);
             }},
        };
    return fields;
}

} // namespace

std::string
stableSerialize(const SweepSpec &spec)
{
    // Every field here feeds the spec fingerprint: adding a field to
    // SystemConfig that changes simulation results means adding it
    // here too, or shards of differently-configured sweeps would
    // carry equal fingerprints and merge silently.
    std::ostringstream os;
    os << "pcmap-sweep-spec v1\n";
    os << "configs=" << spec.configs.size() << "\n";
    for (const ConfigVariant &v : spec.configs) {
        const SystemConfig &c = v.base;
        os << "config.name=" << v.name << "\n";
        os << "geometry=" << c.geometry.channels << ","
           << c.geometry.ranksPerChannel << ","
           << c.geometry.banksPerRank << "," << c.geometry.rowBytes
           << "," << c.geometry.capacityBytes << ","
           << static_cast<int>(c.geometry.interleave) << "\n";
        const PcmTiming &t = c.timing;
        os << "timing=" << t.memClock.periodTicks() << "," << t.tRCD
           << "," << t.tCL << "," << t.tWL << "," << t.tCCD << ","
           << t.tWTR << "," << t.tRTP << "," << t.tRP << ","
           << t.tRRDact << "," << t.tRRDpre << "," << t.tStatus << ","
           << fmtDouble(t.arrayReadNs) << "," << fmtDouble(t.resetNs)
           << "," << fmtDouble(t.setNs) << "\n";
        const CoreConfig &cc = c.core;
        os << "core=" << cc.clock.periodTicks() << "," << cc.issueWidth
           << "," << cc.maxOutstandingReads << "," << cc.robWindowInsts
           << "," << cc.commitDelay << "," << cc.rollbackPenalty << ","
           << cc.assumeAlwaysFaulty << "\n";
        os << "system=" << c.numCores << "," << c.instructionsPerCore
           << "\n";
        os << "queues=" << c.readQueueCap << "," << c.writeQueueCap
           << "," << fmtDouble(c.drainHighWatermark) << ","
           << fmtDouble(c.drainLowWatermark) << ","
           << c.perBankWriteQueues << "\n";
        os << "switches=" << c.modelCodeUpdateTraffic << ","
           << c.modelVerifyTraffic << "," << c.serveReadsDuringDrain
           << "," << c.enableTwoStep << "," << c.rowMultiWordWrites
           << "," << static_cast<int>(c.pagePolicy) << ","
           << static_cast<int>(c.readScheduling) << ","
           << c.enableWriteCancellation << "," << c.enablePreset
           << "\n";
        os << "caps=" << c.codeUpdateBacklogCap << ","
           << c.specReadBufferCap << "," << c.wowMaxMerge << ","
           << c.wowScanDepth << "\n";
        // Conditional, like the policies= line below: a variant on
        // the default single-round SLC organization serializes as it
        // always did, keeping pre-org fingerprints valid.
        if (c.timing.org != DeviceOrg::Slc || c.timing.writeRounds != 1) {
            os << "org=" << deviceOrgName(c.timing.org) << ","
               << c.timing.writeRounds << "\n";
        }
        // Same append-only rule for the request fabric: a disabled
        // fabric (no tenants) serializes nothing.
        if (c.fabric.enabled()) {
            os << "fabric=" << static_cast<int>(c.fabric.arb) << ","
               << fmtDouble(c.fabric.linkGbps) << ","
               << fmtDouble(c.fabric.linkNs) << "," << c.fabric.queueCap
               << "\n";
            for (const fabric::TenantSpec &ts : c.fabric.tenants) {
                os << "tenant=" << static_cast<int>(ts.arrival) << ","
                   << static_cast<int>(ts.qos) << ","
                   << fmtDouble(ts.ratePerUs) << ","
                   << fmtDouble(ts.burst) << "," << ts.window << ","
                   << ts.requests << "\n";
            }
        }
        // Same append-only rule for the DRAM cache tier: tier=none
        // serializes nothing.
        if (c.tier.enabled()) {
            os << "tier=" << cache::tierConfigToString(c.tier) << ","
               << c.tier.hitTicks << "," << c.tier.mshrCap << ","
               << c.tier.writebackBatch << "," << c.tier.wbBufferCap
               << "\n";
        }
    }
    os << "modes=";
    for (std::size_t i = 0; i < spec.modes.size(); ++i)
        os << (i ? "," : "") << systemModeName(spec.modes[i]);
    os << "\nworkloads=";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i)
        os << (i ? "," : "") << spec.workloads[i];
    os << "\nseeds=";
    for (std::size_t i = 0; i < spec.seeds.size(); ++i)
        os << (i ? "," : "") << spec.seeds[i];
    os << "\n";
    // Appended only when present so every fingerprint computed before
    // the policy axis existed stays valid (shard partials carry it).
    if (!spec.policies.empty()) {
        os << "policies=";
        for (std::size_t i = 0; i < spec.policies.size(); ++i)
            os << (i ? "," : "") << spec.policies[i];
        os << "\n";
    }
    // Same append-only rule for the device-organization axis: the
    // default {slc} serializes nothing.
    if (spec.orgs.size() != 1 || spec.orgs[0] != DeviceOrg::Slc) {
        os << "orgs=";
        for (std::size_t i = 0; i < spec.orgs.size(); ++i)
            os << (i ? "," : "") << deviceOrgName(spec.orgs[i]);
        os << "\n";
    }
    return os.str();
}

std::uint64_t
specFingerprint(const SweepSpec &spec)
{
    const std::string text = stableSerialize(spec);
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
fingerprintHex(std::uint64_t fp)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::string
toJsonLine(const RunRecord &rec)
{
    std::ostringstream os;
    os << "{\"index\":" << rec.point.index << ",\"config\":\""
       << jsonEscape(rec.point.configName) << "\",\"mode\":\""
       << jsonEscape(rec.point.label()) << "\",\"workload\":\""
       << jsonEscape(rec.point.workload)
       << "\",\"baseSeed\":" << rec.point.baseSeed
       << ",\"runSeed\":" << rec.point.runSeed
       << ",\"ok\":" << (rec.ok ? "true" : "false") << ",\"error\":\""
       << jsonEscape(rec.error) << "\"";
    if (rec.ok) {
        os << ",\"metrics\":{";
        bool first = true;
        for (const auto &[name, get] : metricFields()) {
            os << (first ? "" : ",") << "\"" << name
               << "\":" << fmtDouble(get(rec.results));
            first = false;
        }
        os << "}";
        if (!rec.stats.empty()) {
            os << ",\"stats\":{";
            first = true;
            for (const auto &[name, value] : rec.stats) {
                os << (first ? "" : ",") << "\"" << jsonEscape(name)
                   << "\":" << fmtDouble(value);
                first = false;
            }
            os << "}";
        }
    }
    os << "}";
    return os.str();
}

void
writeJsonl(const SweepReport &report, std::ostream &os)
{
    for (const RunRecord &rec : report.rows)
        os << toJsonLine(rec) << "\n";
}

std::string
toJsonl(const SweepReport &report)
{
    std::ostringstream os;
    writeJsonl(report, os);
    return os.str();
}

void
writeCsv(const SweepReport &report, std::ostream &os)
{
    // Stat-column union, in first-seen (row-then-registration) order.
    std::vector<std::string> stat_cols;
    for (const RunRecord &rec : report.rows) {
        for (const auto &[name, value] : rec.stats) {
            (void)value;
            bool known = false;
            for (const std::string &c : stat_cols) {
                if (c == name) {
                    known = true;
                    break;
                }
            }
            if (!known)
                stat_cols.push_back(name);
        }
    }

    os << "index,config,mode,workload,baseSeed,runSeed,ok,error";
    for (const auto &[name, get] : metricFields()) {
        (void)get;
        os << "," << name;
    }
    for (const std::string &c : stat_cols)
        os << "," << c;
    os << "\n";

    for (const RunRecord &rec : report.rows) {
        std::string err = rec.error;
        for (char &c : err) {
            if (c == ',' || c == '\n')
                c = ';';
        }
        os << rec.point.index << "," << rec.point.configName << ","
           << rec.point.label() << "," << rec.point.workload
           << "," << rec.point.baseSeed << "," << rec.point.runSeed
           << "," << (rec.ok ? "1" : "0") << "," << err;
        for (const auto &[name, get] : metricFields()) {
            (void)name;
            os << ",";
            if (rec.ok)
                os << fmtDouble(get(rec.results));
        }
        for (const std::string &c : stat_cols) {
            os << ",";
            for (const auto &[name, value] : rec.stats) {
                if (name == c) {
                    os << fmtDouble(value);
                    break;
                }
            }
        }
        os << "\n";
    }
}

} // namespace pcmap::sweep
