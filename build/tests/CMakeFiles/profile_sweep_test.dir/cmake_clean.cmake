file(REMOVE_RECURSE
  "CMakeFiles/profile_sweep_test.dir/workload/profile_sweep_test.cc.o"
  "CMakeFiles/profile_sweep_test.dir/workload/profile_sweep_test.cc.o.d"
  "profile_sweep_test"
  "profile_sweep_test.pdb"
  "profile_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
