/**
 * @file
 * Line-level error code packaging: SECDED per word plus the PCC parity
 * word used by RoW to reconstruct a word held by a busy chip.
 *
 * Per line, the ECC chip stores one SECDED check byte per data word
 * (8 bytes total, matching the x8 ECC chip's one byte per bus beat),
 * and the PCC chip stores the XOR of the eight data words.
 */

#ifndef PCMAP_ECC_LINE_CODEC_H
#define PCMAP_ECC_LINE_CODEC_H

#include <cstdint>

#include "ecc/secded.h"
#include "mem/line.h"

namespace pcmap::ecc {

/** Per-line verification outcome. */
struct LineCheckResult
{
    /** True when every word decodes to Ok or a corrected state. */
    bool ok = true;
    /** Mask of words whose SECDED correction changed a data bit. */
    WordMask correctedWords = 0;
    /** Mask of words with uncorrectable (double-bit) errors. */
    WordMask uncorrectableWords = 0;
};

/**
 * Compute the 8-byte ECC word for a line: byte i is the SECDED check
 * byte of data word i.
 */
std::uint64_t computeEccWord(const CacheLine &line);

/** Compute the PCC word (XOR of all data words) for a line. */
std::uint64_t computePccWord(const CacheLine &line);

/**
 * Incrementally update an ECC word when only some words of the line
 * changed: recomputes check bytes for the words in @p changed only.
 */
std::uint64_t updateEccWord(std::uint64_t old_ecc,
                            const CacheLine &new_line,
                            WordMask changed);

/**
 * Incrementally update a PCC word given old and new values of the
 * changed words (XOR is its own inverse, so only the deltas matter).
 */
std::uint64_t updatePccWord(std::uint64_t old_pcc,
                            const CacheLine &old_line,
                            const CacheLine &new_line,
                            WordMask changed);

/**
 * Reconstruct the word at offset @p missing from the other seven words
 * and the PCC parity word — the RoW read path when the chip holding
 * @p missing is busy with a write.  The value of line.w[missing] is
 * ignored.
 */
std::uint64_t reconstructWord(const CacheLine &line, unsigned missing,
                              std::uint64_t pcc_word);

/**
 * Verify (and correct in place) an entire line against its ECC word.
 * This is the deferred SECDED check performed after a RoW read once
 * the busy chip's true content becomes available.
 */
LineCheckResult checkLine(CacheLine &line, std::uint64_t ecc_word);

/**
 * SECDED-check one delivered word against its check byte in the
 * line's ECC word.  True when the word must be treated as faulty: the
 * decode either corrected it to a different value or flagged it
 * uncorrectable — the speculative-delivery outcome a deferred RoW
 * verification reports (Section IV-B3).
 */
bool wordCheckFaults(std::uint64_t word, std::uint64_t ecc_word,
                     unsigned index);

} // namespace pcmap::ecc

#endif // PCMAP_ECC_LINE_CODEC_H
