/**
 * @file
 * TraceRecorder: the per-run event collector, and its file sinks.
 *
 * Instrumented code holds a `TraceRecorder *` that is null when
 * tracing is off, and records through PCMAP_OBS_TRACE — a macro that
 * compiles to a single null check (and to nothing at all under
 * -DPCMAP_OBS_NO_TRACE).  The disabled cost is one predictable branch
 * per trace point; the CI perf-smoke events/s floor enforces that this
 * stays unmeasurable.
 *
 * Sinks render the ring after the run:
 *  - writeChromeTrace: Chrome trace_event JSON ("X"/"i"/"C" phases,
 *    microsecond timestamps) loadable in chrome://tracing / Perfetto;
 *  - writeTraceJsonl: one compact JSON object per event, for grep/jq.
 *
 * Both are byte-deterministic for a given ring content, which is what
 * lets the sweep determinism test compare trace files across
 * threads=1 and threads=8 runs.
 */

#ifndef PCMAP_OBS_TRACE_H
#define PCMAP_OBS_TRACE_H

#include <iosfwd>
#include <string>

#include "obs/trace_ring.h"

namespace pcmap::obs {

/** Collects trace events for one simulated System. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(std::size_t capacity) : ring_(capacity) {}

    void
    record(TracePoint point, Tick ts, Tick dur = 0,
           std::uint64_t id = 0, std::uint64_t arg0 = 0,
           std::uint64_t arg1 = 0, unsigned channel = 0,
           unsigned rank = 0, unsigned bank = 0)
    {
        TraceEvent e;
        e.ts = ts;
        e.dur = dur;
        e.id = id;
        e.arg0 = arg0;
        e.arg1 = arg1;
        e.point = point;
        e.channel = static_cast<std::uint8_t>(channel);
        e.rank = static_cast<std::uint8_t>(rank);
        e.bank = static_cast<std::uint8_t>(bank);
        ring_.push(e);
    }

    const TraceRing &ring() const { return ring_; }
    TraceRing &ring() { return ring_; }

  private:
    TraceRing ring_;
};

/**
 * Record through a possibly-null recorder pointer.  The argument list
 * after `rec` is forwarded to TraceRecorder::record.
 */
#ifndef PCMAP_OBS_NO_TRACE
#define PCMAP_OBS_TRACE(rec, ...)                                      \
    do {                                                               \
        if (rec)                                                       \
            (rec)->record(__VA_ARGS__);                                \
    } while (0)
#else
#define PCMAP_OBS_TRACE(rec, ...)                                      \
    do {                                                               \
    } while (0)
#endif

/** Render the ring as Chrome trace_event JSON. */
void writeChromeTrace(const TraceRing &ring, std::ostream &out);

/** Render the ring as one-JSON-object-per-line JSONL. */
void writeTraceJsonl(const TraceRing &ring, std::ostream &out);

/** Convenience: Chrome trace JSON as a string. */
std::string chromeTraceJson(const TraceRing &ring);

/** Convenience: trace JSONL as a string. */
std::string traceJsonl(const TraceRing &ring);

} // namespace pcmap::obs

#endif // PCMAP_OBS_TRACE_H
