file(REMOVE_RECURSE
  "CMakeFiles/ext_wear_energy.dir/ext_wear_energy.cpp.o"
  "CMakeFiles/ext_wear_energy.dir/ext_wear_energy.cpp.o.d"
  "ext_wear_energy"
  "ext_wear_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wear_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
