/**
 * @file
 * Randomized property sweeps over the chip-layout policies: inverse
 * mappings, footprint algebra, and the statistical spreading that the
 * rotation modes exist to provide.
 */

#include <gtest/gtest.h>

#include <array>

#include "core/layout.h"
#include "sim/rng.h"

namespace pcmap {
namespace {

class LayoutSweep : public ::testing::TestWithParam<RotationMode>
{
  protected:
    ChipLayout layout() const { return ChipLayout(GetParam(), true); }
};

TEST_P(LayoutSweep, InverseMappingHoldsForRandomLines)
{
    const ChipLayout l = layout();
    Rng rng(1);
    for (int i = 0; i < 10'000; ++i) {
        const std::uint64_t line = rng.next() >> 20;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            const unsigned chip = l.chipForWord(line, w);
            ASSERT_EQ(l.wordForChip(line, chip), w)
                << "line " << line << " word " << w;
        }
        ASSERT_EQ(l.wordForChip(line, l.eccChip(line)), kNoWord);
        ASSERT_EQ(l.wordForChip(line, l.pccChip(line)), kNoWord);
    }
}

TEST_P(LayoutSweep, FootprintAlgebra)
{
    const ChipLayout l = layout();
    Rng rng(2);
    for (int i = 0; i < 5'000; ++i) {
        const std::uint64_t line = rng.next() >> 18;
        const auto words = static_cast<WordMask>(rng.below(256));
        const ChipMask data = l.chipsForWords(line, words);
        const ChipMask fp = l.writeFootprint(line, words);
        // The footprint is the data chips plus exactly the two code
        // chips.
        ASSERT_EQ(fp & data, data);
        ASSERT_TRUE(fp & (1u << l.eccChip(line)));
        ASSERT_TRUE(fp & (1u << l.pccChip(line)));
        ASSERT_EQ(chipCount(fp),
                  chipCount(data) +
                      (((data >> l.eccChip(line)) & 1u) ? 0u : 1u) +
                      (((data >> l.pccChip(line)) & 1u) ? 0u : 1u));
        // Word count preserved by the chip mapping (injective).
        ASSERT_EQ(chipCount(data), wordCount(words));
    }
}

TEST_P(LayoutSweep, SubsetMonotonicity)
{
    const ChipLayout l = layout();
    Rng rng(3);
    for (int i = 0; i < 3'000; ++i) {
        const std::uint64_t line = rng.next() >> 22;
        const auto a = static_cast<WordMask>(rng.below(256));
        const auto b = static_cast<WordMask>(a & rng.below(256));
        // chips(b) subset of chips(a) whenever b subset of a.
        const ChipMask ca = l.chipsForWords(line, a);
        const ChipMask cb = l.chipsForWords(line, b);
        ASSERT_EQ(cb & ca, cb);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, LayoutSweep,
                         ::testing::Values(RotationMode::None,
                                           RotationMode::Data,
                                           RotationMode::DataEcc),
                         [](const auto &info) {
                             switch (info.param) {
                               case RotationMode::None: return "None";
                               case RotationMode::Data: return "Data";
                               default: return "DataEcc";
                             }
                         });

TEST(LayoutSpread, DataRotationEqualizesPerChipWordLoad)
{
    // Over many sequential lines, word 0 must land uniformly across
    // the 8 data chips under RD and across all 10 under RDE.
    const ChipLayout rd(RotationMode::Data, true);
    const ChipLayout rde(RotationMode::DataEcc, true);
    std::array<int, kChipsPerRank> hist_rd{};
    std::array<int, kChipsPerRank> hist_rde{};
    const int lines = 8000;
    for (int line = 0; line < lines; ++line) {
        ++hist_rd[rd.chipForWord(static_cast<std::uint64_t>(line), 0)];
        ++hist_rde[rde.chipForWord(static_cast<std::uint64_t>(line),
                                   0)];
    }
    for (unsigned c = 0; c < kDataChips; ++c)
        EXPECT_EQ(hist_rd[c], lines / 8) << "RD chip " << c;
    for (unsigned c = 0; c < kChipsPerRank; ++c)
        EXPECT_EQ(hist_rde[c], lines / 10) << "RDE chip " << c;
}

TEST(LayoutSpread, EccRotationEqualizesCodeChipLoad)
{
    const ChipLayout rde(RotationMode::DataEcc, true);
    std::array<int, kChipsPerRank> ecc_hist{};
    std::array<int, kChipsPerRank> pcc_hist{};
    const int lines = 10000;
    for (int line = 0; line < lines; ++line) {
        ++ecc_hist[rde.eccChip(static_cast<std::uint64_t>(line))];
        ++pcc_hist[rde.pccChip(static_cast<std::uint64_t>(line))];
    }
    for (unsigned c = 0; c < kChipsPerRank; ++c) {
        EXPECT_EQ(ecc_hist[c], lines / 10) << "chip " << c;
        EXPECT_EQ(pcc_hist[c], lines / 10) << "chip " << c;
    }
}

} // namespace
} // namespace pcmap
