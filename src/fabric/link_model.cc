#include "fabric/link_model.h"

#include <cmath>
#include <utility>

#include "obs/attrib.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace pcmap::fabric {

namespace {

/**
 * Modelled wire footprint of one request: a 64 B line plus an 8 B
 * command/completion header, half-duplex.  Reads and writes are
 * charged the same (the read's response data shares the link with the
 * next request's payload in this simplification; DESIGN.md discusses
 * the trade).
 */
constexpr double kRequestBytes = 72.0;

/** WRR weights per QoS class (LatencySensitive, BestEffort). */
constexpr unsigned kWrrWeightLs = 4;
constexpr unsigned kWrrWeightBe = 1;

unsigned
wrrWeight(QosClass q)
{
    return q == QosClass::LatencySensitive ? kWrrWeightLs
                                           : kWrrWeightBe;
}

} // namespace

LinkModel::LinkModel(const FabricConfig &config,
                     std::vector<unsigned> core_tenant, EventQueue &eq,
                     MemoryPort &downstream)
    : ForwardingPort(downstream), cfg(config),
      coreTenant(std::move(core_tenant)), eventq(eq),
      passThrough(cfg.bypassLink()),
      tenants(cfg.tenants.size()), queues(cfg.tenants.size()),
      credits(cfg.tenants.size())
{
    pcmap_assert(!cfg.tenants.empty());
    if (cfg.linkGbps > 0.0) {
        // 1 B at 1 GB/s is 1 ns = 1000 ticks.
        serTicks = static_cast<Tick>(
            std::llround(kRequestBytes * 1000.0 / cfg.linkGbps));
    }
    propTicks = static_cast<Tick>(std::llround(cfg.linkNs * 1000.0));
    for (std::size_t t = 0; t < cfg.tenants.size(); ++t)
        credits[t] = wrrWeight(cfg.tenants[t].qos);

    // Per-tenant write commit latency rides the controller's
    // write-complete notification in both modes.  Writes absorbed by
    // coalescing never commit on their own and are not sampled.
    down.setWriteCompleteCallback(
        [this](ReqId, unsigned core_id, Tick enq, Tick commit) {
            TenantCounters &c = tenants[tenantOf(core_id)];
            ++c.writesCommitted;
            c.writeDevice.sample(commit - enq);
        });

    if (!passThrough) {
        // Queue-space notifications first drain the stash (requests
        // already past the link), then wake the upstream sources, then
        // resume granting.
        down.setRetryCallback([this]() { onDownstreamRetry(); });
    }
}

unsigned
LinkModel::tenantOf(unsigned core_id) const
{
    pcmap_assert(core_id < coreTenant.size());
    return coreTenant[core_id];
}

MemoryPort::ReadCallback
LinkModel::wrapRead(unsigned t, Tick arrival, Tick handoff,
                    ReadCallback cb)
{
    return [this, t, arrival, handoff,
            cb = std::move(cb)](const ReadResponse &resp) {
        TenantCounters &c = tenants[t];
        ++c.readsCompleted;
        c.readTotal.sample(resp.completionTick - arrival);
        if (!passThrough)
            c.deviceRead.sample(resp.completionTick - handoff);
        if (cb)
            cb(resp);
    };
}

bool
LinkModel::enqueueRead(const MemRequest &req, ReadCallback cb)
{
    const unsigned t = tenantOf(req.coreId);
    const Tick now = eventq.now();
    if (passThrough) {
        const bool ok =
            down.enqueueRead(req, wrapRead(t, now, now, std::move(cb)));
        if (ok)
            ++tenants[t].readsAccepted;
        else
            ++tenants[t].rejected;
        return ok;
    }
    if (queues[t].size() >= cfg.queueCap) {
        ++tenants[t].rejected;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::LinkDrop, now, 0,
                        req.id, queues[t].size(), 0, t);
        return false;
    }
    ++tenants[t].readsAccepted;
    PCMAP_OBS_TRACE(trace, obs::TracePoint::LinkEnqueue, now, 0, req.id,
                    queues[t].size() + 1, 0, t);
    queues[t].push_back(Pending{req, std::move(cb), now, t, false});
    if (attrib != nullptr) {
        attrib->ensure(queues[t].back().req, now,
                       obs::attrib::AttribOp::Read);
    }
    pump();
    return true;
}

bool
LinkModel::enqueueWrite(const MemRequest &req)
{
    const unsigned t = tenantOf(req.coreId);
    const Tick now = eventq.now();
    if (passThrough) {
        const bool ok = down.enqueueWrite(req);
        if (ok)
            ++tenants[t].writesAccepted;
        else
            ++tenants[t].rejected;
        return ok;
    }
    if (queues[t].size() >= cfg.queueCap) {
        ++tenants[t].rejected;
        PCMAP_OBS_TRACE(trace, obs::TracePoint::LinkDrop, now, 0,
                        req.id, queues[t].size(), 0, t);
        return false;
    }
    ++tenants[t].writesAccepted;
    PCMAP_OBS_TRACE(trace, obs::TracePoint::LinkEnqueue, now, 0, req.id,
                    queues[t].size() + 1, 0, t);
    queues[t].push_back(Pending{req, ReadCallback{}, now, t, false});
    if (attrib != nullptr) {
        attrib->ensure(queues[t].back().req, now,
                       obs::attrib::AttribOp::Write);
    }
    pump();
    return true;
}

void
LinkModel::setRetryCallback(RetryCallback cb)
{
    if (passThrough) {
        // No link-side queueing: back-pressure notifications flow
        // straight through, exactly as without a link.
        down.setRetryCallback(std::move(cb));
        return;
    }
    upstreamRetry = std::move(cb);
}

std::size_t
LinkModel::pickTenant()
{
    const std::size_t n = queues.size();
    if (cfg.arb == LinkArb::StrictPriority) {
        // Latency-sensitive tenants strictly first; one shared
        // rotation pointer keeps selection round-robin within a class.
        std::size_t best_be = kNone;
        for (std::size_t off = 0; off < n; ++off) {
            const std::size_t t = (rrNext + off) % n;
            if (queues[t].empty())
                continue;
            if (cfg.tenants[t].qos == QosClass::LatencySensitive) {
                rrNext = (t + 1) % n;
                return t;
            }
            if (best_be == kNone)
                best_be = t;
        }
        if (best_be != kNone)
            rrNext = (best_be + 1) % n;
        return best_be;
    }
    // Weighted round-robin: spend a credit per grant; when every
    // backlogged tenant is out of credits, refill all to their QoS
    // weight.  Deterministic by construction (no randomness, fixed
    // iteration order).
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t off = 0; off < n; ++off) {
            const std::size_t t = (rrNext + off) % n;
            if (queues[t].empty() || credits[t] == 0)
                continue;
            --credits[t];
            rrNext = (t + 1) % n;
            return t;
        }
        bool any_backlog = false;
        for (std::size_t t = 0; t < n; ++t) {
            if (!queues[t].empty()) {
                any_backlog = true;
                credits[t] = wrrWeight(cfg.tenants[t].qos);
            }
        }
        if (!any_backlog)
            return kNone;
    }
    return kNone;
}

bool
LinkModel::tryDeliver(Pending &p)
{
    // Everything up to the downstream handoff — queueing behind the
    // arbiter, serialization, propagation, stash retries — is link
    // wait; a refused delivery advances the span on the next attempt.
    if (obs::attrib::PhaseLedger *led = p.req.ledger)
        led->account(obs::attrib::Phase::LinkWait, eventq.now());
    if (p.req.type == ReqType::Read) {
        if (!p.wrapped) {
            // The handoff tick is the first delivery attempt: from
            // here on any wait is downstream back-pressure, accounted
            // as device time.
            p.cb = wrapRead(p.tenantId, p.arrival, eventq.now(),
                            std::move(p.cb));
            p.wrapped = true;
        }
        return down.enqueueRead(p.req, p.cb);
    }
    return down.enqueueWrite(p.req);
}

void
LinkModel::deliverOrStash(Pending &&p)
{
    // FIFO across the device boundary: once anything is stashed,
    // later deliveries queue behind it.
    if (stash.empty() && tryDeliver(p))
        return;
    stash.push_back(std::move(p));
}

void
LinkModel::onDownstreamRetry()
{
    while (!stash.empty() && tryDeliver(stash.front()))
        stash.pop_front();
    if (upstreamRetry)
        upstreamRetry();
    pump();
}

void
LinkModel::schedulePump(Tick at)
{
    if (pumpScheduled)
        return;
    pumpScheduled = true;
    eventq.schedule(at, [this]() {
        pumpScheduled = false;
        pump();
    });
}

void
LinkModel::pump()
{
    const Tick now = eventq.now();
    bool freed_full_queue = false;
    while (stash.empty()) {
        if (linkFreeAt > now) {
            schedulePump(linkFreeAt);
            break;
        }
        const std::size_t t = pickTenant();
        if (t == kNone)
            break;
        Pending p = std::move(queues[t].front());
        queues[t].pop_front();
        if (queues[t].size() == cfg.queueCap - 1)
            freed_full_queue = true;
        tenants[t].linkWait.sample(now - p.arrival);
        PCMAP_OBS_TRACE(trace, obs::TracePoint::LinkIssue, now,
                        serTicks, p.req.id, now - p.arrival, 0, t);
        linkBusyTicks += serTicks;
        linkFreeAt = now + serTicks;
        eventq.schedule(now + serTicks + propTicks,
                        [this, p = std::move(p)]() mutable {
                            deliverOrStash(std::move(p));
                        });
    }
    // Wake sources that saw a full tenant queue.  Done after the grant
    // loop so a re-entrant enqueue never interleaves with it.
    if (freed_full_queue && upstreamRetry)
        upstreamRetry();
}

} // namespace pcmap::fabric
