/**
 * @file
 * A small statistics package in the spirit of the gem5 Stats framework.
 *
 * Statistics register themselves with a StatGroup; groups can be nested
 * and dumped as a flat name-value listing.  Available kinds:
 *
 *  - Scalar      : a running counter / value
 *  - Average     : running mean of samples
 *  - Distribution: bucketed histogram with min/max/mean
 *  - TimeWeighted: value integrated over simulated time
 *  - Percentiles : refreshed p50/p90/p99/p99.9/max/mean/samples summary
 */

#ifndef PCMAP_SIM_STATS_H
#define PCMAP_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/log.h"
#include "sim/types.h"

namespace pcmap::stats {

class StatGroup;

/** A flattened "dotted.name -> value" view of a stat tree. */
using FlatStats = std::vector<std::pair<std::string, double>>;

/** Base class for all statistics; registers with its group. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &description() const { return statDesc; }

    /** Write "name value # desc" lines to @p os with @p prefix. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /**
     * Append this stat's values to @p out as (prefix+name, value)
     * pairs, using the same naming as dump() (so ".mean"/".samples"
     * suffixes appear for multi-valued kinds).  Machine-readable twin
     * of dump() for exporters (JSONL/CSV sweep aggregation).
     */
    virtual void collect(FlatStats &out,
                         const std::string &prefix) const = 0;

    /** Number of (name, value) pairs collect() appends. */
    virtual std::size_t flatSize() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A running counter or gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { total += v; return *this; }
    Scalar &operator++() { total += 1.0; return *this; }
    void set(double v) { total = v; }
    double value() const { return total; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void collect(FlatStats &out,
                 const std::string &prefix) const override;
    std::size_t flatSize() const override { return 1; }
    void reset() override { total = 0.0; }

  private:
    double total = 0.0;
};

/** Running mean over discrete samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum += v;
        ++count;
    }

    double mean() const { return count ? sum / count : 0.0; }
    std::uint64_t samples() const { return count; }
    double total() const { return sum; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void collect(FlatStats &out,
                 const std::string &prefix) const override;
    std::size_t flatSize() const override { return 2; }
    void reset() override { sum = 0.0; count = 0; }

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/** Fixed-bucket histogram with overflow/underflow and summary moments. */
class Distribution : public StatBase
{
  public:
    /**
     * @param lo          Lowest bucketed value (inclusive).
     * @param hi          Highest bucketed value (exclusive).
     * @param bucket_size Width of each bucket.
     */
    Distribution(StatGroup &group, std::string name, std::string desc,
                 double lo, double hi, double bucket_size);

    void sample(double v);

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double minSeen() const { return minValue; }
    double maxSeen() const { return maxValue; }
    std::uint64_t bucketCount(std::size_t i) const { return buckets[i]; }
    std::size_t numBuckets() const { return buckets.size(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void collect(FlatStats &out,
                 const std::string &prefix) const override;
    std::size_t flatSize() const override { return 6 + buckets.size(); }
    void reset() override;

  private:
    double low;
    double high;
    double width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

/**
 * A value integrated over simulated time (for utilization-style
 * metrics such as IRLP).  Call update(now, v) whenever the tracked
 * value changes; mean() gives the time-weighted average between the
 * first and the last update.
 */
class TimeWeighted : public StatBase
{
  public:
    using StatBase::StatBase;

    /** Record that the tracked value becomes @p v at time @p now. */
    void
    update(Tick now, double v)
    {
        if (hasValue) {
            pcmap_assert(now >= lastTick);
            area += current * static_cast<double>(now - lastTick);
            span += static_cast<double>(now - lastTick);
        } else {
            hasValue = true;
        }
        lastTick = now;
        current = v;
        maxValue = std::max(maxValue, v);
    }

    /** Close the integration window at @p now without changing value. */
    void finish(Tick now) { update(now, current); }

    double mean() const { return span > 0.0 ? area / span : 0.0; }
    double maxSeen() const { return maxValue; }
    double observedSpan() const { return span; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void collect(FlatStats &out,
                 const std::string &prefix) const override;
    std::size_t flatSize() const override { return 2; }

    void
    reset() override
    {
        area = span = current = maxValue = 0.0;
        lastTick = 0;
        hasValue = false;
    }

  private:
    double area = 0.0;
    double span = 0.0;
    double current = 0.0;
    double maxValue = 0.0;
    Tick lastTick = 0;
    bool hasValue = false;
};

/**
 * A percentile summary of an externally maintained histogram (e.g.
 * obs::LogHistogram).  The owner refreshes the seven values before
 * each dump/collect; this class only names and exports them, keeping
 * the stats package independent of any histogram implementation.
 */
class Percentiles : public StatBase
{
  public:
    using StatBase::StatBase;

    /** One refreshed summary value per exported key. */
    struct Values
    {
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        double p999 = 0.0;
        double max = 0.0;
        double mean = 0.0;
        double samples = 0.0;
    };

    void set(const Values &v) { vals = v; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void collect(FlatStats &out,
                 const std::string &prefix) const override;
    std::size_t flatSize() const override { return 7; }
    void reset() override { vals = Values{}; }

  private:
    Values vals;
};

/** A named collection of statistics, possibly with child groups. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return groupName; }

    /** Register a statistic (called by StatBase's constructor). */
    void addStat(StatBase *stat) { statList.push_back(stat); }

    /** Attach a child group; lifetime managed by the caller. */
    void addChild(StatGroup *child) { children.push_back(child); }

    /** Dump all stats, prefixing names with the group path. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Flatten the whole tree into (dotted.name, value) pairs, in
     * registration order (deterministic for a given construction
     * sequence).  Mirrors dump()'s naming exactly.
     */
    void collect(FlatStats &out, const std::string &prefix = "") const;

    /** Total (name, value) pairs this group and its children flatten to. */
    std::size_t flatSize() const;

    /** Convenience: collect() into a fresh vector. */
    FlatStats flattened() const;

    /** Reset all stats in this group and its children. */
    void resetAll();

    /** Find a stat by exact name in this group only (nullptr if none). */
    const StatBase *find(const std::string &name) const;

  private:
    // The tree walks thread one growing dotted-path scratch through
    // the recursion (append here, restore on return) so a deep tree
    // costs no per-group string concatenations.
    void dumpInto(std::ostream &os, std::string &path) const;
    void collectInto(FlatStats &out, std::string &path) const;

    std::string groupName;
    std::vector<StatBase *> statList;
    std::vector<StatGroup *> children;
};

} // namespace pcmap::stats

#endif // PCMAP_SIM_STATS_H
