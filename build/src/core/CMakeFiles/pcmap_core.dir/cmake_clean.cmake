file(REMOVE_RECURSE
  "CMakeFiles/pcmap_core.dir/controller.cc.o"
  "CMakeFiles/pcmap_core.dir/controller.cc.o.d"
  "CMakeFiles/pcmap_core.dir/controller_config.cc.o"
  "CMakeFiles/pcmap_core.dir/controller_config.cc.o.d"
  "CMakeFiles/pcmap_core.dir/layout.cc.o"
  "CMakeFiles/pcmap_core.dir/layout.cc.o.d"
  "CMakeFiles/pcmap_core.dir/memory_system.cc.o"
  "CMakeFiles/pcmap_core.dir/memory_system.cc.o.d"
  "CMakeFiles/pcmap_core.dir/stat_export.cc.o"
  "CMakeFiles/pcmap_core.dir/stat_export.cc.o.d"
  "CMakeFiles/pcmap_core.dir/system.cc.o"
  "CMakeFiles/pcmap_core.dir/system.cc.o.d"
  "libpcmap_core.a"
  "libpcmap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
