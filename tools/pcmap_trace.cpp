/**
 * @file
 * pcmap-trace: validate, summarize and merge the observability files
 * pcmap-sweep emits (Chrome trace_event JSON and epoch-timeline
 * JSONL).
 *
 *   pcmap-trace check FILE...            validate schemas; exit 1 on
 *                                        the first malformed file
 *   pcmap-trace summary FILE [top=N]     event counts, the N slowest
 *                                        requests, per-bank conflict
 *                                        attribution (trace files) or
 *                                        run-level rates (timelines)
 *   pcmap-trace merge out=PATH FILE...   combine Chrome traces into
 *                                        one Perfetto-loadable file
 *                                        (per-input pid offset keeps
 *                                        points distinguishable)
 *
 * File kind is sniffed from content, not extension: a document whose
 * root object carries `traceEvents` is a Chrome trace; JSONL whose
 * rows carry `tick` is a timeline; rows with `pt` are trace JSONL.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/epoch.h"
#include "obs/json_mini.h"
#include "obs/trace_event.h"
#include "sim/log.h"
#include "sweep/dist/atomic_file.h"

namespace {

using namespace pcmap;

void
usage()
{
    std::puts(
        "pcmap-trace: inspect pcmap observability files\n"
        "\n"
        "usage:\n"
        "  pcmap-trace check FILE...          validate trace/timeline\n"
        "                                     schemas\n"
        "  pcmap-trace summary FILE [top=N]   counts, slowest requests\n"
        "                                     and per-bank conflict\n"
        "                                     attribution (default\n"
        "                                     top=10)\n"
        "  pcmap-trace merge out=PATH FILE... combine Chrome traces\n"
        "                                     into one file");
}

/** What one input file turned out to contain. */
enum class FileKind { ChromeTrace, Timeline, TraceJsonl };

/** Non-empty lines of a JSONL body. */
std::vector<std::string>
splitLines(const std::string &body)
{
    std::vector<std::string> lines;
    std::istringstream is(body);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

/** Validate one Chrome trace_event document; fatal() on violations. */
std::size_t
checkChromeTrace(const std::string &path, const obs::JsonValue &doc)
{
    const obs::JsonValue *other = doc.get("otherData");
    if (other == nullptr || !other->isObject())
        fatal(path, ": missing otherData object");
    for (const char *key : {"recorded", "dropped"}) {
        const obs::JsonValue *v = other->get(key);
        if (v == nullptr || !v->isNumber())
            fatal(path, ": otherData.", key, " missing or not a number");
    }
    const obs::JsonValue *events = doc.get("traceEvents");
    if (events == nullptr || !events->isArray())
        fatal(path, ": missing traceEvents array");
    std::size_t n = 0;
    for (const obs::JsonValue &e : events->items()) {
        ++n;
        if (!e.isObject())
            fatal(path, ": traceEvents[", n - 1, "] is not an object");
        for (const char *key : {"name", "cat", "ph"}) {
            const obs::JsonValue *v = e.get(key);
            if (v == nullptr || !v->isString())
                fatal(path, ": event ", n - 1, ": '", key,
                      "' missing or not a string");
        }
        for (const char *key : {"ts", "pid", "tid"}) {
            const obs::JsonValue *v = e.get(key);
            if (v == nullptr || !v->isNumber())
                fatal(path, ": event ", n - 1, ": '", key,
                      "' missing or not a number");
        }
        const std::string &ph = e.get("ph")->asString();
        if (ph.size() != 1 || std::strchr("XiC", ph[0]) == nullptr)
            fatal(path, ": event ", n - 1, ": phase '", ph,
                  "' is not one of X, i, C");
        if (ph == "X" &&
            (e.get("dur") == nullptr || !e.get("dur")->isNumber()))
            fatal(path, ": event ", n - 1,
                  ": complete event without a numeric 'dur'");
        const obs::JsonValue *args = e.get("args");
        if (args == nullptr || !args->isObject())
            fatal(path, ": event ", n - 1, ": missing args object");
    }
    return n;
}

/** Validate one trace-JSONL row; fatal() on violations. */
void
checkTraceJsonlRow(const std::string &path, std::size_t lineno,
                   const obs::JsonValue &row)
{
    for (const char *key : {"pt", "ph"}) {
        const obs::JsonValue *v = row.get(key);
        if (v == nullptr || !v->isString())
            fatal(path, ":", lineno, ": '", key,
                  "' missing or not a string");
    }
    for (const char *key :
         {"ts", "dur", "id", "a0", "a1", "ch", "rank", "bank"}) {
        const obs::JsonValue *v = row.get(key);
        if (v == nullptr || !v->isNumber())
            fatal(path, ":", lineno, ": '", key,
                  "' missing or not a number");
    }
}

/** Parse @p path, classify it, and validate; fatal() when invalid. */
FileKind
checkFile(const std::string &path, std::size_t &rows)
{
    const std::string body = sweep::dist::readFile(path);
    if (body.empty())
        fatal(path, ": empty file");
    // A Chrome trace is one JSON document; JSONL is one per line.
    if (body[0] == '{' && body.find("\"traceEvents\"") !=
                              std::string::npos) {
        std::string err;
        const auto doc = obs::parseJson(body, &err);
        if (!doc)
            fatal(path, ": ", err);
        if (!doc->isObject())
            fatal(path, ": root is not an object");
        rows = checkChromeTrace(path, *doc);
        return FileKind::ChromeTrace;
    }
    const std::vector<std::string> lines = splitLines(body);
    if (lines.empty())
        fatal(path, ": no JSONL rows");
    FileKind kind = FileKind::Timeline;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string err;
        const auto row = obs::parseJson(lines[i], &err);
        if (!row)
            fatal(path, ":", i + 1, ": ", err);
        if (!row->isObject())
            fatal(path, ":", i + 1, ": row is not an object");
        if (row->has("tick")) {
            kind = FileKind::Timeline;
            if (!obs::parseTimelineLine(lines[i], &err))
                fatal(path, ":", i + 1, ": ", err);
        } else if (row->has("pt")) {
            kind = FileKind::TraceJsonl;
            checkTraceJsonlRow(path, i + 1, *row);
        } else {
            fatal(path, ":", i + 1,
                  ": row is neither a timeline sample (tick=) nor a "
                  "trace event (pt=)");
        }
    }
    rows = lines.size();
    return kind;
}

int
checkMain(const std::vector<std::string> &files)
{
    if (files.empty())
        fatal("check: needs at least one file");
    for (const std::string &path : files) {
        std::size_t rows = 0;
        const FileKind kind = checkFile(path, rows);
        const char *what = kind == FileKind::ChromeTrace
                               ? "chrome-trace events"
                               : (kind == FileKind::Timeline
                                      ? "timeline samples"
                                      : "trace-jsonl events");
        std::printf("OK %s: %zu %s\n", path.c_str(), rows, what);
    }
    return 0;
}

/** One completed request pulled out of a Chrome trace for ranking. */
struct Completion
{
    double durUs = 0.0;
    double tsUs = 0.0;
    std::uint64_t id = 0;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    bool isWrite = false;
    std::uint64_t flags = 0;   ///< reads: arg0 flag bits
    std::string kind;          ///< writes: coarse/two_step/...
};

std::string
readFlagNames(std::uint64_t flags)
{
    std::string out;
    const std::pair<std::uint64_t, const char *> names[] = {
        {obs::kReadFlagRowHit, "rowHit"},
        {obs::kReadFlagSpeculative, "spec"},
        {obs::kReadFlagReconstruct, "reconstruct"},
        {obs::kReadFlagEccDeferred, "eccDeferred"},
        {obs::kReadFlagDelayedByWrite, "delayedByWrite"},
        {obs::kReadFlagForwarded, "forwarded"},
    };
    for (const auto &[bit, name] : names) {
        if (flags & bit) {
            if (!out.empty())
                out += "+";
            out += name;
        }
    }
    return out.empty() ? "-" : out;
}

int
summaryMain(const std::vector<std::string> &files, std::size_t top_n)
{
    if (files.size() != 1)
        fatal("summary: needs exactly one file");
    const std::string &path = files[0];
    std::size_t rows = 0;
    const FileKind kind = checkFile(path, rows);

    if (kind == FileKind::Timeline) {
        const std::vector<std::string> lines =
            splitLines(sweep::dist::readFile(path));
        obs::TimelineSample last;
        for (const std::string &line : lines)
            last = *obs::parseTimelineLine(line);
        std::printf("timeline %s: %zu samples over %.3f ms\n",
                    path.c_str(), rows,
                    static_cast<double>(last.tick) / 1e9);
        std::printf("  reads=%llu writes=%llu rowReads=%llu "
                    "eccDeferred=%llu wowMerged=%llu\n",
                    static_cast<unsigned long long>(last.readsCompleted),
                    static_cast<unsigned long long>(
                        last.writesCompleted),
                    static_cast<unsigned long long>(last.rowReads),
                    static_cast<unsigned long long>(
                        last.deferredEccReads),
                    static_cast<unsigned long long>(
                        last.wowMergedWrites));
        std::printf("  irlpMean=%.3f irlpMax=%u rowHitRate=%.4f "
                    "wowMergeRate=%.4f\n",
                    last.irlpMean(), last.irlpMax, last.rowHitRate(),
                    last.wowMergeRate());
        return 0;
    }
    if (kind == FileKind::TraceJsonl)
        fatal("summary: expects a Chrome trace (.trace.json) or a "
              "timeline (.timeline.jsonl), not trace JSONL");

    const auto doc = obs::parseJson(sweep::dist::readFile(path));
    const obs::JsonValue *events = doc->get("traceEvents");
    const obs::JsonValue *other = doc->get("otherData");
    std::map<std::string, std::size_t> by_name;
    std::vector<Completion> completions;
    // Conflict attribution: reads flagged delayed-by-write, per bank.
    std::map<std::string, std::size_t> conflicts;
    for (const obs::JsonValue &e : events->items()) {
        const std::string &name = e.get("name")->asString();
        ++by_name[name];
        if (name != "read" && name != "write")
            continue;
        const obs::JsonValue *args = e.get("args");
        Completion c;
        c.durUs = e.numberOr("dur", 0.0);
        c.tsUs = e.numberOr("ts", 0.0);
        c.id = args->get("id") ? args->get("id")->asU64() : 0;
        c.channel = static_cast<unsigned>(e.numberOr("pid", 0.0));
        c.rank = static_cast<unsigned>(args->numberOr("rank", 0.0));
        c.bank = static_cast<unsigned>(args->numberOr("bank", 0.0));
        c.isWrite = name == "write";
        if (c.isWrite) {
            const obs::JsonValue *k = args->get("kind");
            c.kind = k != nullptr ? k->asString() : "?";
        } else {
            c.flags =
                args->get("arg0") ? args->get("arg0")->asU64() : 0;
            if (c.flags & obs::kReadFlagDelayedByWrite) {
                char key[48];
                std::snprintf(key, sizeof(key), "ch%u.rank%u.bank%u",
                              c.channel, c.rank, c.bank);
                ++conflicts[key];
            }
        }
        completions.push_back(std::move(c));
    }

    std::printf("trace %s: %zu events (%llu recorded, %llu dropped)\n",
                path.c_str(), rows,
                static_cast<unsigned long long>(
                    other->get("recorded")->asU64()),
                static_cast<unsigned long long>(
                    other->get("dropped")->asU64()));
    std::printf("events by name:\n");
    for (const auto &[name, count] : by_name)
        std::printf("  %-18s %8zu\n", name.c_str(), count);

    std::stable_sort(completions.begin(), completions.end(),
                     [](const Completion &a, const Completion &b) {
                         return a.durUs > b.durUs;
                     });
    std::printf("slowest %zu requests (enqueue-to-completion):\n",
                std::min(top_n, completions.size()));
    for (std::size_t i = 0; i < completions.size() && i < top_n; ++i) {
        const Completion &c = completions[i];
        std::printf("  %-5s id=%-10llu %10.3f us  ts=%.3f us  "
                    "ch%u.rank%u.bank%u  %s\n",
                    c.isWrite ? "write" : "read",
                    static_cast<unsigned long long>(c.id), c.durUs,
                    c.tsUs, c.channel, c.rank, c.bank,
                    c.isWrite ? c.kind.c_str()
                              : readFlagNames(c.flags).c_str());
    }

    std::vector<std::pair<std::string, std::size_t>> ranked(
        conflicts.begin(), conflicts.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    std::printf("read/write conflicts by bank (delayed-by-write "
                "reads):\n");
    if (ranked.empty())
        std::printf("  none\n");
    for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
        std::printf("  %-20s %8zu\n", ranked[i].first.c_str(),
                    ranked[i].second);
    }
    return 0;
}

// --- merge -----------------------------------------------------------

/** Append @p v re-serialized (raw number tokens kept exact). */
void
appendJson(std::string &out, const obs::JsonValue &v)
{
    switch (v.kind()) {
    case obs::JsonValue::Kind::Null:
        out += "null";
        return;
    case obs::JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
    case obs::JsonValue::Kind::Number:
        if (!v.asString().empty()) {
            out += v.asString(); // the exact source token
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", v.asNumber());
            out += buf;
        }
        return;
    case obs::JsonValue::Kind::String:
        out += '"';
        for (const char c : v.asString()) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        out += '"';
        return;
    case obs::JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const obs::JsonValue &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            appendJson(out, item);
        }
        out += ']';
        return;
    }
    case obs::JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, val] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += key;
            out += "\":";
            appendJson(out, val);
        }
        out += '}';
        return;
    }
    }
}

/**
 * Each input's channels land on their own pid band so merged points
 * stay side by side in Perfetto; comfortably above any channel count.
 */
constexpr std::uint64_t kMergePidStride = 100;

int
mergeMain(const std::string &out_path,
          const std::vector<std::string> &files)
{
    if (out_path.empty())
        fatal("merge: needs out=PATH");
    if (files.empty())
        fatal("merge: needs at least one input file");
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::string events;
    bool first = true;
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::size_t rows = 0;
        if (checkFile(files[i], rows) != FileKind::ChromeTrace)
            fatal("merge: ", files[i], " is not a Chrome trace file");
        const auto doc =
            obs::parseJson(sweep::dist::readFile(files[i]));
        const obs::JsonValue *other = doc->get("otherData");
        recorded += other->get("recorded")->asU64();
        dropped += other->get("dropped")->asU64();
        for (const obs::JsonValue &e :
             doc->get("traceEvents")->items()) {
            obs::JsonValue shifted = e;
            for (auto &[key, val] : shifted.fields) {
                if (key == "pid") {
                    val = obs::JsonValue::makeNumber(
                        val.asNumber() +
                            static_cast<double>(i * kMergePidStride),
                        std::to_string(val.asU64() +
                                       i * kMergePidStride));
                }
            }
            if (!first)
                events += ",\n";
            first = false;
            appendJson(events, shifted);
        }
    }
    std::string out;
    out.reserve(events.size() + 256);
    out += "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"recorded\":";
    out += std::to_string(recorded);
    out += ",\"dropped\":";
    out += std::to_string(dropped);
    out += ",\"mergedFiles\":";
    out += std::to_string(files.size());
    out += "},\"traceEvents\":[";
    out += events;
    out += "]}\n";
    sweep::dist::atomicWriteFile(out_path, out);
    std::printf("merged %zu files -> %s\n", files.size(),
                out_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc <= 1) {
        usage();
        return 0;
    }
    const std::string cmd = argv[1];
    std::vector<std::string> files;
    std::size_t top_n = 10;
    std::string out_path;
    for (int i = 2; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("top=", 0) == 0) {
            top_n = static_cast<std::size_t>(
                std::strtoull(token.c_str() + 4, nullptr, 10));
            if (top_n == 0)
                fatal("top= must be positive");
        } else if (token.rfind("out=", 0) == 0) {
            out_path = token.substr(4);
        } else {
            files.push_back(token);
        }
    }
    if (cmd == "check")
        return checkMain(files);
    if (cmd == "summary")
        return summaryMain(files, top_n);
    if (cmd == "merge")
        return mergeMain(out_path, files);
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    fatal("unknown subcommand '", cmd,
          "' (expected check, summary, or merge)");
}
