/**
 * @file
 * Stats-framework export of the latency-attribution histograms.
 *
 * Mirrors an AttribCollector into an "attrib" StatGroup: per-tenant
 * child groups ("t0", "t1", ...), each with one child per op class
 * ("read"/"write"/"writeback") carrying a Percentiles summary plus an
 * exact sum (ns) per phase and for the total.  Flattened keys look
 * like "attrib.t0.read.linkWait.p99" and join the JSONL/CSV sweep
 * aggregation only when attribution is enabled — the same append-only
 * discipline as the fabric.* and cache.* families.  Only (tenant, op)
 * families that sampled at least one request get groups, so the key
 * set is lean and still deterministic (it depends only on simulation
 * results, which are thread-count invariant).
 */

#ifndef PCMAP_OBS_ATTRIB_STATS_H
#define PCMAP_OBS_ATTRIB_STATS_H

#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/attrib.h"
#include "sim/stats.h"

namespace pcmap::obs {

/** Snapshot-and-dump bridge from AttribCollector to stats. */
class AttribStatExport
{
  public:
    /** @param collector Must outlive this exporter. */
    explicit AttribStatExport(const attrib::AttribCollector &collector);
    ~AttribStatExport();

    AttribStatExport(const AttribStatExport &) = delete;
    AttribStatExport &operator=(const AttribStatExport &) = delete;

    /** Copy the collector's histograms into the stat objects. */
    void refresh();

    /** refresh() then write the full listing to @p os. */
    void dump(std::ostream &os);

    /** The stat tree (valid between refreshes). */
    const stats::StatGroup &root() const { return rootGroup; }

  private:
    struct OpMirror;
    struct TenantMirror;

    const attrib::AttribCollector &col;
    stats::StatGroup rootGroup{"attrib"};
    std::vector<std::unique_ptr<TenantMirror>> mirrors;
};

} // namespace pcmap::obs

#endif // PCMAP_OBS_ATTRIB_STATS_H
