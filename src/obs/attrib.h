/**
 * @file
 * Cross-layer latency attribution: per-request phase ledgers.
 *
 * When enabled (obs attrib=true) every request that completes through
 * the stack carries a PhaseLedger that splits its enqueue->completion
 * latency into exact, non-overlapping phase spans:
 *
 *   linkWait       fabric arrival -> link grant (queued links only)
 *   cacheLookup    DRAM-tier hit window (enqueue -> hit delivery)
 *   mshrWait       parked behind an in-flight tier fill
 *   wbBufferStall  dirty victim parked in the tier's wb buffer
 *   queueResidency controller queue wait not explained by bank state
 *   bankWait       controller wait for the planned chips/bank to free
 *   arrayAccess    issue -> array completion (the device service time)
 *   roundPause     MLC+ group-write wait at round boundaries
 *   verifyDefer    annex: completion -> clean deferred-ECC verdict
 *   rollbackRedo   annex: faulted verify / cancelled-write redo time
 *
 * Accounting is cursor-based: account(p, until) charges [cursor,
 * until) to phase p and advances the cursor, so the core phases
 * partition [start, close] exactly — whatever no layer claimed lands
 * in an internal "unattributed" bucket that tests pin to zero.  The
 * two annex phases extend past the completion tick (a speculative
 * read completes before its deferred check), so the conservation rule
 * is: core phases + unattributed == close - start, always.
 *
 * Ledgers are owned by the AttribCollector and referenced from
 * MemRequest by pointer; layers attach ledgers only to request copies
 * they store themselves.  Zero cost when disabled: no collector is
 * constructed, and every instrumentation site is one null check.
 */

#ifndef PCMAP_OBS_ATTRIB_H
#define PCMAP_OBS_ATTRIB_H

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/types.h"

namespace pcmap::obs::attrib {

/** Where one slice of a request's latency was spent. */
enum class Phase : std::uint8_t
{
    LinkWait,
    CacheLookup,
    MshrWait,
    WbBufferStall,
    QueueResidency,
    BankWait,
    ArrayAccess,
    RoundPause,
    VerifyDefer,
    RollbackRedo,
    Unattributed, ///< residual; conservation tests pin this to zero
};

constexpr std::size_t kPhaseCount = 11;
/** Phases that partition [start, close]; annex phases come after. */
constexpr std::size_t kCorePhaseCount = 8;

/** Stable lower-camel phase key used in stats, JSONL and tools. */
const char *phaseName(Phase p);

/** Operation class a ledger is attributed under. */
enum class AttribOp : std::uint8_t
{
    Read,
    Write,
    Writeback, ///< DRAM-tier dirty-victim drain toward PCM
};

constexpr std::size_t kOpCount = 3;

const char *attribOpName(AttribOp op);

/**
 * One request's phase accounting.  Created/attached by the collector;
 * instrumentation sites only ever call account().
 */
class PhaseLedger
{
  public:
    /**
     * Charge [cursor, until) to @p p.  Clamped: a site may pass a
     * tick the cursor has already reached (another layer claimed the
     * span first) and the call is a no-op.  Closed ledgers ignore it.
     */
    void
    account(Phase p, Tick until)
    {
        if (closed || until <= cursor)
            return;
        spans[static_cast<std::size_t>(p)] += until - cursor;
        cursor = until;
    }

    Tick startTick() const { return start; }
    Tick closeTick() const { return closedAt; }
    Tick span(Phase p) const
    {
        return spans[static_cast<std::size_t>(p)];
    }
    std::uint64_t reqId() const { return id; }
    /** Late identity: a tier write-back learns its id at drain time. */
    void setReqId(std::uint64_t v) { id = v; }
    unsigned tenantId() const { return tenant; }
    AttribOp op() const { return opKind; }

  private:
    friend class AttribCollector;

    Tick start = 0;
    Tick cursor = 0;
    Tick closedAt = 0;
    std::array<Tick, kPhaseCount> spans{};
    std::uint64_t id = 0;
    unsigned tenant = 0;
    AttribOp opKind = AttribOp::Read;
    bool closed = false;  ///< completion reached; spans frozen (annex aside)
    bool held = false;    ///< sampling deferred until the verify verdict
    bool sampled = false; ///< folded into the histograms already
};

/** One of the K slowest requests, with its full ledger. */
struct TailExemplar
{
    Tick start = 0;
    Tick total = 0; ///< enqueue -> completion (annex excluded)
    std::uint64_t id = 0;
    unsigned tenant = 0;
    AttribOp op = AttribOp::Read;
    std::array<Tick, kPhaseCount> spans{};
};

/**
 * Owns every ledger of one run plus the per-(tenant, op, phase)
 * histograms and the bounded tail-exemplar reservoir.
 */
class AttribCollector
{
  public:
    /** Per-(tenant, op) family: one histogram per phase + the total. */
    struct PhaseHists
    {
        std::array<LogHistogram, kPhaseCount> phase;
        std::array<std::uint64_t, kPhaseCount> sumTicks{};
        LogHistogram total;
        std::uint64_t totalSumTicks = 0;
    };

    /** @param exemplars Reservoir size K (0 disables exemplars). */
    explicit AttribCollector(unsigned exemplars);

    AttribCollector(const AttribCollector &) = delete;
    AttribCollector &operator=(const AttribCollector &) = delete;

    /**
     * Declare the tenant space: @p tenant_count tenants with
     * @p core_tenant mapping core id -> tenant id (the fabric's
     * contiguous-block partition; one tenant when the fabric is off).
     */
    void configureTenants(unsigned tenant_count,
                          std::vector<unsigned> core_tenant);

    /**
     * The ledger for @p req: the one it already carries, or a fresh
     * one opened at @p now (start = cursor = now) and attached to
     * @p req.  @p Req is any struct with coreId/id/ledger members
     * (MemRequest; templated so this header stays below mem/).
     */
    template <typename Req>
    PhaseLedger *
    ensure(Req &req, Tick now, AttribOp op)
    {
        if (req.ledger == nullptr)
            req.ledger = open(op, req.coreId, req.id, now);
        return req.ledger;
    }

    /** Open a ledger with no request to attach it to (tier wb). */
    PhaseLedger *open(AttribOp op, unsigned core_id, std::uint64_t id,
                      Tick now);

    /**
     * Close at the completion tick @p at: charge the residual to
     * Unattributed, freeze the core spans and fold the ledger into
     * the histograms — unless held for a deferred verify, in which
     * case sampling waits for finishSpec().  Idempotent: later calls
     * (a fill fan-out re-closing the primary waiter) are no-ops.
     */
    void close(PhaseLedger *led, Tick at);

    /** Defer sampling until the deferred-ECC verdict (RoW reads). */
    void
    holdForVerify(PhaseLedger *led)
    {
        if (led != nullptr && !led->sampled)
            led->held = true;
    }

    /**
     * The deferred verify of a held ledger resolved at @p now:
     * charge [close, now) to the annex phase (VerifyDefer when clean,
     * RollbackRedo when faulted) and sample.
     */
    void finishSpec(PhaseLedger *led, Tick now, bool fault);

    /**
     * Drop a ledger that will never complete as its own request (a
     * write absorbed by coalescing); it is never sampled, keeping the
     * histogram populations identical to the completion trace points.
     */
    void discard(PhaseLedger *led);

    /** End of run: drop still-open ledgers (parked dirty victims). */
    void finalize();

    unsigned tenants() const { return tenantCount; }
    unsigned
    tenantOf(unsigned core_id) const
    {
        return core_id < coreTenant.size() ? coreTenant[core_id] : 0;
    }

    const PhaseHists &
    hists(unsigned tenant, AttribOp op) const
    {
        return families[tenant * kOpCount +
                        static_cast<std::size_t>(op)];
    }

    /** Exemplars, slowest first (deterministic total/start/id order). */
    std::vector<TailExemplar> exemplars() const;

    std::uint64_t sampledCount() const { return numSampled; }
    std::uint64_t discardedCount() const { return numDiscarded; }

  private:
    void sampleInto(PhaseLedger &led);
    void offerExemplar(const PhaseLedger &led);

    unsigned tenantCount = 1;
    std::vector<unsigned> coreTenant;
    std::deque<PhaseLedger> ledgers; ///< stable addresses, bulk-freed
    std::vector<PhaseHists> families; ///< [tenant * kOpCount + op]
    std::vector<TailExemplar> reservoir;
    unsigned reservoirCap;
    std::uint64_t numSampled = 0;
    std::uint64_t numDiscarded = 0;
};

/**
 * The collector's results as JSONL: one "phase" row per (tenant, op,
 * phase), one "total" row per (tenant, op), then "exemplar" rows
 * slowest-first.  All values are exact integers (ticks), so the text
 * is bit-reproducible across hosts and thread counts.
 */
std::string attribJsonl(const AttribCollector &collector);

} // namespace pcmap::obs::attrib

#endif // PCMAP_OBS_ATTRIB_H
