#include "workload/mixes.h"

#include "sim/log.h"
#include "workload/profile.h"

namespace pcmap::workload {

namespace {

WorkloadSpec
pairsMix(const std::string &name, const std::string &a,
         const std::string &b, const std::string &c,
         const std::string &d, unsigned cores)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.sharedAddressSpace = false;
    const std::string apps[4] = {a, b, c, d};
    for (unsigned i = 0; i < cores; ++i)
        spec.coreApps.push_back(apps[(i / 2) % 4]);
    return spec;
}

} // namespace

WorkloadSpec
makeWorkload(const std::string &name, unsigned cores)
{
    if (cores == 0)
        fatal("a workload needs at least one core");

    if (name == "MP1")
        return pairsMix(name, "mcf", "gemsFDTD", "astar", "sphinx3",
                        cores);
    if (name == "MP2")
        return pairsMix(name, "mcf", "gromacs", "gemsFDTD", "h264ref",
                        cores);
    if (name == "MP3")
        return pairsMix(name, "gromacs", "h264ref", "astar", "sphinx3",
                        cores);
    if (name == "MP4")
        return pairsMix(name, "astar", "astar", "astar", "astar", cores);
    if (name == "MP5")
        return pairsMix(name, "gemsFDTD", "gemsFDTD", "gemsFDTD",
                        "gemsFDTD", cores);
    if (name == "MP6")
        return pairsMix(name, "cactusADM", "soplex", "gemsFDTD", "astar",
                        cores);

    const AppProfile &p = findProfile(name); // fatal() if unknown
    WorkloadSpec spec;
    spec.name = name;
    spec.sharedAddressSpace =
        p.suite == Suite::Parsec2 || p.suite == Suite::Stream;
    spec.coreApps.assign(cores, name);
    return spec;
}

std::vector<std::string>
evaluatedMtWorkloads()
{
    return {"canneal",  "dedup",        "facesim",
            "fluidanimate", "freqmine", "streamcluster"};
}

std::vector<std::string>
evaluatedMpWorkloads()
{
    return {"MP1", "MP2", "MP3", "MP4", "MP5", "MP6"};
}

std::vector<std::string>
evaluatedWorkloads()
{
    std::vector<std::string> all = evaluatedMtWorkloads();
    for (const std::string &w : evaluatedMpWorkloads())
        all.push_back(w);
    return all;
}

} // namespace pcmap::workload
