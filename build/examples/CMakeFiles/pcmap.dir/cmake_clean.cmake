file(REMOVE_RECURSE
  "CMakeFiles/pcmap.dir/pcmap_sim.cpp.o"
  "CMakeFiles/pcmap.dir/pcmap_sim.cpp.o.d"
  "pcmap"
  "pcmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
