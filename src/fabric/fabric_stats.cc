#include "fabric/fabric_stats.h"

#include <ostream>
#include <string>

namespace pcmap::fabric {

/** One tenant's stat objects plus the refresh logic. */
struct FabricStatExport::TenantMirror
{
    explicit TenantMirror(const std::string &name)
        : group(name),
          read(group, "read", "fabric read latency percentiles (ns)"),
          linkWait(group, "linkWait",
                   "arrival-to-link-grant percentiles (ns)"),
          device(group, "device",
                 "link-handoff-to-completion percentiles (ns)"),
          write(group, "write",
                "write enqueue-to-commit percentiles (ns)"),
          readsAccepted(group, "readsAccepted",
                        "reads the fabric accepted"),
          writesAccepted(group, "writesAccepted",
                         "writes the fabric accepted"),
          readsCompleted(group, "readsCompleted", "reads completed"),
          writesCommitted(group, "writesCommitted",
                          "write-backs committed to the array"),
          rejected(group, "rejected",
                   "enqueue attempts refused (queue full)"),
          throughput(group, "throughputMops",
                     "completed requests per microsecond")
    {
    }

    /** Summary -> Percentiles values, ticks exported as ns. */
    static stats::Percentiles::Values
    percentileValuesNs(const obs::LogHistogram &h)
    {
        const obs::LogHistogram::Summary s = h.summary();
        stats::Percentiles::Values v;
        v.p50 = s.p50 * 1e-3;
        v.p90 = s.p90 * 1e-3;
        v.p99 = s.p99 * 1e-3;
        v.p999 = s.p999 * 1e-3;
        v.max = s.max * 1e-3;
        v.mean = s.mean * 1e-3;
        v.samples = static_cast<double>(s.samples);
        return v;
    }

    /** @return completed requests per microsecond of @p sim_ticks. */
    double
    refresh(const TenantCounters &c, Tick sim_ticks)
    {
        read.set(percentileValuesNs(c.readTotal));
        linkWait.set(percentileValuesNs(c.linkWait));
        device.set(percentileValuesNs(c.deviceRead));
        write.set(percentileValuesNs(c.writeDevice));
        readsAccepted.set(static_cast<double>(c.readsAccepted));
        writesAccepted.set(static_cast<double>(c.writesAccepted));
        readsCompleted.set(static_cast<double>(c.readsCompleted));
        writesCommitted.set(static_cast<double>(c.writesCommitted));
        rejected.set(static_cast<double>(c.rejected));
        const double done = static_cast<double>(c.readsCompleted) +
                            static_cast<double>(c.writesCommitted);
        const double tput =
            sim_ticks > 0 ? done / (static_cast<double>(sim_ticks) * 1e-6)
                          : 0.0;
        throughput.set(tput);
        return tput;
    }

    stats::StatGroup group;
    stats::Percentiles read;
    stats::Percentiles linkWait;
    stats::Percentiles device;
    stats::Percentiles write;
    stats::Scalar readsAccepted;
    stats::Scalar writesAccepted;
    stats::Scalar readsCompleted;
    stats::Scalar writesCommitted;
    stats::Scalar rejected;
    stats::Scalar throughput;
};

FabricStatExport::FabricStatExport(const LinkModel &link_model)
    : link(link_model)
{
    for (unsigned t = 0; t < link.tenantCount(); ++t) {
        mirrors.push_back(std::make_unique<TenantMirror>(
            "tenant" + std::to_string(t)));
        rootGroup.addChild(&mirrors.back()->group);
    }
}

FabricStatExport::~FabricStatExport() = default;

void
FabricStatExport::refresh(Tick sim_ticks)
{
    std::vector<double> tputs(mirrors.size());
    for (unsigned t = 0; t < link.tenantCount(); ++t)
        tputs[t] = mirrors[t]->refresh(link.tenant(t), sim_ticks);
    jain.set(jainIndex(tputs));
    linkUtil.set(sim_ticks > 0
                     ? static_cast<double>(link.busyTicks()) /
                           static_cast<double>(sim_ticks)
                     : 0.0);
}

void
FabricStatExport::dump(std::ostream &os, Tick sim_ticks)
{
    refresh(sim_ticks);
    rootGroup.dump(os);
}

} // namespace pcmap::fabric
