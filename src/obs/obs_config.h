/**
 * @file
 * Observability knobs carried inside SystemConfig.
 *
 * Deliberately excluded from sweep serialization/fingerprints: the
 * settings never change simulation results (asserted by
 * obs_integration_test), only what gets recorded about them.
 */

#ifndef PCMAP_OBS_OBS_CONFIG_H
#define PCMAP_OBS_OBS_CONFIG_H

#include <cstddef>

#include "sim/types.h"

namespace pcmap::obs {

struct ObsConfig
{
    /** Record request-lifecycle trace events. */
    bool trace = false;

    /** Ring capacity in events (rounded up to a power of two). */
    std::size_t traceCapacity = 1u << 18;

    /** Timeline sampling period in sim ticks; 0 disables the timeline. */
    Tick epochTicks = 0;

    /** Collect per-request phase ledgers (latency attribution). */
    bool attrib = false;

    /** Tail-exemplar reservoir size (K slowest requests kept). */
    unsigned attribExemplars = 8;

    /** Anything enabled at all? */
    bool
    enabled() const
    {
        return trace || epochTicks > 0 || attrib;
    }
};

} // namespace pcmap::obs

#endif // PCMAP_OBS_OBS_CONFIG_H
