/**
 * @file
 * Determinism regression: the same SweepSpec serialized after running
 * at threads=1 and threads=8 must be byte-identical, and per-run
 * seeds must be stable however completions interleave.  This is the
 * contract that makes every sweep-produced figure reproducible from
 * one command line.
 */

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sweep/sweep_io.h"
#include "sweep/sweep_runner.h"

namespace pcmap::sweep {
namespace {

/** 2 modes x 4 workloads x 2 seeds = 16 real simulation points. */
SweepSpec
matrixSpec()
{
    SweepSpec spec;
    spec.modes = {SystemMode::Baseline, SystemMode::RWoW_RDE};
    spec.workloads = {"MP1", "MP4", "canneal", "streamcluster"};
    spec.seeds = {1, 2};
    spec.configs[0].base.instructionsPerCore = 4000;
    return spec;
}

std::string
runAt(unsigned threads)
{
    SweepRunner::Options opts;
    opts.threads = threads;
    return toJsonl(SweepRunner(opts).run(matrixSpec()));
}

TEST(SweepDeterminism, SingleAndEightThreadOutputsAreByteIdentical)
{
    const std::string serial = runAt(1);
    const std::string parallel = runAt(8);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

TEST(SweepDeterminism, ParallelRunsAreRepeatable)
{
    EXPECT_EQ(runAt(8), runAt(8));
}

TEST(SweepDeterminism, SeedsIgnoreCompletionOrder)
{
    // Force wildly uneven run times so completion order scrambles,
    // then check every row still carries its index-derived seed.
    SweepSpec spec = matrixSpec();
    SweepRunner::Options opts;
    opts.threads = 8;
    SweepRunner runner(opts);
    runner.setRunFn([](const SweepPoint &p, RunRecord &rec) {
        // Busy-wait longer for early indices so later ones finish
        // first on any schedule.
        volatile std::uint64_t sink = 0;
        const std::uint64_t spin = (16 - p.index) * 20'000;
        for (std::uint64_t i = 0; i < spin; ++i)
            sink += i;
        rec.results.ipcSum = static_cast<double>(sink % 7);
    });
    const SweepReport report = runner.run(spec);
    ASSERT_EQ(report.rows.size(), 16u);
    for (const RunRecord &rec : report.rows) {
        EXPECT_EQ(rec.point.runSeed,
                  Rng::deriveStream(rec.point.baseSeed,
                                    rec.point.index));
    }
}

TEST(SweepDeterminism, OrgAxisIsByteIdenticalAcrossThreadCounts)
{
    // The multi-round write machinery (round chaining, boundary
    // pause/cancel) runs inside the simulated controller, so denser
    // organizations must shard across workers exactly as cleanly as
    // slc does.
    SweepSpec spec = matrixSpec();
    spec.orgs.assign(std::begin(kAllOrgs), std::end(kAllOrgs));
    const auto run_at = [&spec](unsigned threads) {
        SweepRunner::Options opts;
        opts.threads = threads;
        return toJsonl(SweepRunner(opts).run(spec));
    };
    const std::string serial = run_at(1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, run_at(8));
}

TEST(SweepDeterminism, SlcPrefixOfMultiOrgSweepMatchesLegacySweep)
{
    // org expansion is slc-first and org-major, so the first quarter
    // of a four-org report must be byte-for-byte the legacy report.
    SweepSpec multi = matrixSpec();
    multi.orgs.assign(std::begin(kAllOrgs), std::end(kAllOrgs));
    const std::string legacy =
        toJsonl(SweepRunner().run(matrixSpec()));
    const std::string all = toJsonl(SweepRunner().run(multi));
    ASSERT_FALSE(legacy.empty());
    ASSERT_GT(all.size(), legacy.size());
    EXPECT_EQ(all.substr(0, legacy.size()), legacy);
}

TEST(SweepDeterminism, SerializationExcludesWallClock)
{
    // A field that differs between runs of identical work would break
    // byte-identity; make sure timing never leaks into the output.
    const SweepReport report = SweepRunner().run(matrixSpec());
    for (const RunRecord &rec : report.rows) {
        const std::string line = toJsonLine(rec);
        EXPECT_EQ(line.find("wall"), std::string::npos) << line;
    }
}

} // namespace
} // namespace pcmap::sweep
